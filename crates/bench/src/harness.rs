//! Run orchestration: effort levels, result rows, parallel sweeps, CSV
//! output, and table printing.

use std::fmt;
use std::path::Path;

use gaat_jacobi3d::{run_charm_in, run_mpi_in, CommMode, Fusion, JacobiConfig, SyncMode};
use gaat_rt::WorldSlot;

/// Which of the paper's four Jacobi3D versions to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Variant {
    /// MPI with host staging.
    MpiH,
    /// CUDA-aware MPI.
    MpiD,
    /// Task runtime with host staging.
    CharmH,
    /// Task runtime with GPU-aware Channel API.
    CharmD,
}

impl Variant {
    /// The paper's series label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::MpiH => "MPI-H",
            Variant::MpiD => "MPI-D",
            Variant::CharmH => "Charm-H",
            Variant::CharmD => "Charm-D",
        }
    }

    /// Is this a task-runtime (overdecomposable) version?
    pub fn is_charm(self) -> bool {
        matches!(self, Variant::CharmH | Variant::CharmD)
    }

    /// Halo transport of this variant.
    pub fn comm(self) -> CommMode {
        match self {
            Variant::MpiH | Variant::CharmH => CommMode::HostStaging,
            Variant::MpiD | Variant::CharmD => CommMode::GpuAware,
        }
    }
}

/// How much compute to spend regenerating figures.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Effort {
    /// Timed iterations (paper: 100).
    pub iters: usize,
    /// Warm-up iterations (paper: 10).
    pub warmup: usize,
    /// Largest node count for the scaling sweeps (paper: 512).
    pub max_nodes: usize,
    /// ODFs swept for the task-runtime versions (paper: 1..16 by 2x).
    pub odfs: Vec<usize>,
    /// RNG seeds averaged per point (paper: 3 trials).
    pub seeds: Vec<u64>,
    /// Network jitter override (`None` = machine default). Quick efforts
    /// run a single seed, so per-message jitter (±1%) is not averaged
    /// out and can flip marginal shape comparisons — they pin it to 0
    /// and assert on the noise-free means instead.
    pub jitter: Option<f64>,
}

impl Effort {
    /// Tiny runs for integration tests (seconds of wall time).
    pub fn quick() -> Self {
        Effort {
            iters: 6,
            warmup: 2,
            max_nodes: 8,
            odfs: vec![1, 4],
            seeds: vec![1],
            jitter: Some(0.0),
        }
    }

    /// Default for `cargo run --bin figures` (a few minutes).
    pub fn standard() -> Self {
        Effort {
            iters: 30,
            warmup: 5,
            max_nodes: 64,
            odfs: vec![1, 2, 4, 8],
            seeds: vec![1],
            jitter: None,
        }
    }

    /// Paper-scale runs (hours): 512 nodes, 100 iterations, 3 seeds.
    pub fn full() -> Self {
        Effort {
            iters: 100,
            warmup: 10,
            max_nodes: 512,
            odfs: vec![1, 2, 4, 8, 16],
            seeds: vec![1, 2, 3],
            jitter: None,
        }
    }

    /// Powers of two from `from` to `min(cap, max_nodes)`.
    pub fn node_counts(&self, from: usize, cap: usize) -> Vec<usize> {
        let mut v = Vec::new();
        let mut n = from;
        while n <= cap.min(self.max_nodes) {
            v.push(n);
            n *= 2;
        }
        v
    }
}

/// One measured point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Row {
    /// Figure id ("6a", "7c", ...).
    pub figure: String,
    /// Series label as it would appear in the plot legend.
    pub series: String,
    /// Node count (x axis).
    pub nodes: usize,
    /// ODF used (1 for MPI).
    pub odf: usize,
    /// Fusion strategy.
    pub fusion: String,
    /// Graph execution on?
    pub graphs: bool,
    /// Mean time per iteration in microseconds (y axis).
    pub time_us: f64,
    /// Mean CPU utilization across PEs.
    pub cpu_util: f64,
    /// Seeds averaged.
    pub seeds: usize,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} nodes  {:<22} odf={:<2} {:>12.1} us/iter  (cpu {:.2})",
            self.nodes, self.series, self.odf, self.time_us, self.cpu_util
        )
    }
}

/// Run one experiment configuration in `slot`'s recycled world,
/// averaging over the effort's seeds. World reuse is bit-invisible
/// (`Sim::reset` is pinned bit-identical to a fresh engine), so figure
/// rows are unchanged from the pre-slot serial harness.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
pub fn run_point(
    slot: &mut WorldSlot,
    figure: &str,
    series: &str,
    variant: Variant,
    nodes: usize,
    global: gaat_jacobi3d::Dims,
    odf: usize,
    fusion: Fusion,
    graphs: bool,
    sync: SyncMode,
    e: &Effort,
) -> Row {
    let mut total_us = 0.0;
    let mut total_cpu = 0.0;
    for &seed in &e.seeds {
        let mut cfg = JacobiConfig::new(gaat_rt::MachineConfig::summit(nodes), global);
        cfg.machine.seed = seed;
        if let Some(j) = e.jitter {
            cfg.machine.net.jitter = j;
        }
        cfg.comm = variant.comm();
        cfg.sync = sync;
        cfg.fusion = fusion;
        cfg.graphs = graphs;
        cfg.iters = e.iters;
        cfg.warmup = e.warmup;
        let sim0 = slot.prepare(cfg.machine.clone());
        let (sim, r) = if variant.is_charm() {
            cfg.odf = odf;
            run_charm_in(sim0, cfg)
        } else {
            assert_eq!(odf, 1, "MPI runs one rank per PE");
            run_mpi_in(sim0, cfg)
        };
        slot.retire(sim);
        total_us += r.time_per_iter.as_micros_f64();
        total_cpu += r.cpu_utilization;
    }
    let n = e.seeds.len() as f64;
    Row {
        figure: figure.to_string(),
        series: series.to_string(),
        nodes,
        odf,
        fusion: format!("{fusion:?}"),
        graphs,
        time_us: total_us / n,
        cpu_util: total_cpu / n,
        seeds: e.seeds.len(),
    }
}

/// Execute a batch of independent jobs on the sweep engine's slot pool:
/// each worker thread owns one reusable [`WorldSlot`] handed to every
/// job it claims, so engines are recycled across figure points instead
/// of rebuilt (the sweep engine's fast path, bit-invisible in results).
pub fn run_jobs<J, F>(jobs: Vec<J>, f: F) -> Vec<Row>
where
    J: Send + Sync,
    F: Fn(&mut WorldSlot, &J) -> Row + Sync,
{
    gaat_sweep::run_batch(&jobs, 0, f).0
}

/// For each (series, nodes) keep only the fastest row over ODFs — how the
/// paper reports its task-runtime series ("the ODF with the best
/// performance is chosen as the representative for each point").
pub fn best_per_point(rows: &[Row]) -> Vec<Row> {
    let mut best: Vec<Row> = Vec::new();
    for r in rows {
        match best
            .iter_mut()
            .find(|b| b.series == r.series && b.nodes == r.nodes && b.figure == r.figure)
        {
            Some(b) => {
                if r.time_us < b.time_us {
                    *b = r.clone();
                }
            }
            None => best.push(r.clone()),
        }
    }
    best
}

/// Serialize rows as CSV.
pub fn write_csv(path: &Path, rows: &[Row]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "figure,series,nodes,odf,fusion,graphs,time_us,cpu_util,seeds"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{:.3},{:.4},{}",
            r.figure, r.series, r.nodes, r.odf, r.fusion, r.graphs, r.time_us, r.cpu_util, r.seeds
        )?;
    }
    Ok(())
}

/// Render rows as an aligned ASCII table grouped by node count.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.figure, a.nodes, &a.series, a.odf, &a.fusion, a.graphs)
            .cmp(&(&b.figure, b.nodes, &b.series, b.odf, &b.fusion, b.graphs))
    });
    let mut last_group = (String::new(), usize::MAX);
    for r in sorted {
        if (r.figure.clone(), r.nodes) != last_group {
            println!("-- fig {} @ {} node(s) --", r.figure, r.nodes);
            last_group = (r.figure.clone(), r.nodes);
        }
        let tag = if r.graphs { " +graphs" } else { "" };
        println!(
            "  {:<22} odf={:<2} fusion={:<4}{:8} {:>12.1} us/iter  cpu={:.2}",
            r.series, r.odf, r.fusion, tag, r.time_us, r.cpu_util
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_are_powers_of_two() {
        let e = Effort {
            max_nodes: 64,
            ..Effort::quick()
        };
        assert_eq!(e.node_counts(1, 512), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(e.node_counts(8, 16), vec![8, 16]);
        assert_eq!(e.node_counts(128, 512), Vec::<usize>::new());
    }

    #[test]
    fn best_per_point_picks_minimum() {
        let mk = |series: &str, nodes, odf, t| Row {
            figure: "x".into(),
            series: series.into(),
            nodes,
            odf,
            fusion: "None".into(),
            graphs: false,
            time_us: t,
            cpu_util: 0.0,
            seeds: 1,
        };
        let rows = vec![
            mk("a", 1, 1, 10.0),
            mk("a", 1, 2, 7.0),
            mk("a", 2, 1, 9.0),
            mk("b", 1, 1, 1.0),
        ];
        let best = best_per_point(&rows);
        assert_eq!(best.len(), 3);
        let a1 = best
            .iter()
            .find(|r| r.series == "a" && r.nodes == 1)
            .expect("present");
        assert_eq!(a1.odf, 2);
        assert_eq!(a1.time_us, 7.0);
    }

    #[test]
    fn run_jobs_completes_all() {
        let jobs: Vec<usize> = (0..20).collect();
        let rows = run_jobs(jobs, |_slot, &i| Row {
            figure: "t".into(),
            series: format!("s{i}"),
            nodes: i,
            odf: 1,
            fusion: "None".into(),
            graphs: false,
            time_us: i as f64,
            cpu_util: 0.0,
            seeds: 1,
        });
        assert_eq!(rows.len(), 20);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.nodes, i, "results in job order");
        }
    }
}
