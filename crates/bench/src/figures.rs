//! The experiments of the paper's evaluation section, one function per
//! figure. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured shape comparisons.

use gaat_jacobi3d::{Dims, Fusion, SyncMode};

use crate::harness::{run_jobs, run_point, Effort, Row, Variant};

/// Global grid for weak scaling: the per-node volume stays `base³` by
/// doubling one axis per doubling of nodes (the paper's "size of each
/// dimension is increased successively by a factor of two").
pub fn weak_dims(base: usize, nodes: usize) -> Dims {
    assert!(nodes.is_power_of_two());
    let mut d = [base, base, base];
    let mut k = nodes.trailing_zeros() as usize;
    let mut axis = 2; // grow z first, then y, then x
    while k > 0 {
        d[axis] *= 2;
        axis = (axis + 2) % 3; // z, y, x, z, ...
        k -= 1;
    }
    Dims::new(d[0], d[1], d[2])
}

struct Job {
    figure: &'static str,
    series: String,
    variant: Variant,
    nodes: usize,
    global: Dims,
    odf: usize,
    fusion: Fusion,
    graphs: bool,
    sync: SyncMode,
}

fn exec(jobs: Vec<Job>, e: &Effort) -> Vec<Row> {
    run_jobs(jobs, |slot, j| {
        run_point(
            slot, j.figure, &j.series, j.variant, j.nodes, j.global, j.odf, j.fusion, j.graphs,
            j.sync, e,
        )
    })
}

/// Fig. 6: Charm-H before/after the host-device synchronization and
/// stream-concurrency optimizations (§III-C), ODF-4.
/// (a) weak scaling at 1536³/node, (b) strong scaling of a 3072³ grid.
pub fn fig6(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(1, 64) {
        for (series, sync) in [
            ("Charm-H (original)", SyncMode::Original),
            ("Charm-H (optimized)", SyncMode::Optimized),
        ] {
            jobs.push(Job {
                figure: "6a",
                series: series.into(),
                variant: Variant::CharmH,
                nodes,
                global: weak_dims(1536, nodes),
                odf: 4,
                fusion: Fusion::None,
                graphs: false,
                sync,
            });
        }
    }
    for nodes in e.node_counts(8, 256) {
        for (series, sync) in [
            ("Charm-H (original)", SyncMode::Original),
            ("Charm-H (optimized)", SyncMode::Optimized),
        ] {
            jobs.push(Job {
                figure: "6b",
                series: series.into(),
                variant: Variant::CharmH,
                nodes,
                global: Dims::cube(3072),
                odf: 4,
                fusion: Fusion::None,
                graphs: false,
                sync,
            });
        }
    }
    exec(jobs, e)
}

/// The four-version comparison used by Figs. 7a–7c. Task-runtime versions
/// are swept over the effort's ODFs (the figure shows the best per
/// point; the CSV keeps all ODFs so the crossover analysis is possible).
fn four_versions(figure: &'static str, nodes: usize, global: Dims, e: &Effort) -> Vec<Job> {
    let mut jobs = Vec::new();
    for variant in [Variant::MpiH, Variant::MpiD] {
        jobs.push(Job {
            figure,
            series: variant.label().into(),
            variant,
            nodes,
            global,
            odf: 1,
            fusion: Fusion::None,
            graphs: false,
            sync: SyncMode::Optimized,
        });
    }
    for variant in [Variant::CharmH, Variant::CharmD] {
        for &odf in &e.odfs {
            jobs.push(Job {
                figure,
                series: variant.label().into(),
                variant,
                nodes,
                global,
                odf,
                fusion: Fusion::None,
                graphs: false,
                sync: SyncMode::Optimized,
            });
        }
    }
    jobs
}

/// Fig. 7a: weak scaling, 1536³ per node (halos up to 9.4 MB — the
/// GPU-aware pipelined-staging regime).
pub fn fig7a(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(1, 512) {
        jobs.extend(four_versions("7a", nodes, weak_dims(1536, nodes), e));
    }
    exec(jobs, e)
}

/// Fig. 7b: weak scaling, 192³ per node (96 KB halos — the GPUDirect
/// regime).
pub fn fig7b(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(1, 512) {
        jobs.extend(four_versions("7b", nodes, weak_dims(192, nodes), e));
    }
    exec(jobs, e)
}

/// Fig. 7c: strong scaling of a 3072³ global grid up to 512 nodes.
pub fn fig7c(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(8, 512) {
        jobs.extend(four_versions("7c", nodes, Dims::cube(3072), e));
    }
    exec(jobs, e)
}

/// Fig. 8: kernel fusion strategies on Charm-D, strong scaling of a
/// 768³ grid, ODF 1 and 8.
pub fn fig8(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(1, 128) {
        for odf in [1usize, 8] {
            for (name, fusion) in [
                ("Baseline", Fusion::None),
                ("Fusion-A", Fusion::A),
                ("Fusion-B", Fusion::B),
                ("Fusion-C", Fusion::C),
            ] {
                jobs.push(Job {
                    figure: "8",
                    series: format!("{name} (ODF-{odf})"),
                    variant: Variant::CharmD,
                    nodes,
                    global: Dims::cube(768),
                    odf,
                    fusion,
                    graphs: false,
                    sync: SyncMode::Optimized,
                });
            }
        }
    }
    exec(jobs, e)
}

/// Fig. 9: speedup from graph execution (with and without fusion),
/// Charm-D, 768³ strong scaling, ODF 1 and 8. Emits both the baseline
/// and the graph rows; speedups are baseline/graphs per (series, nodes).
pub fn fig9(e: &Effort) -> Vec<Row> {
    let mut jobs = Vec::new();
    for nodes in e.node_counts(1, 128) {
        for odf in [1usize, 8] {
            for (name, fusion) in [
                ("NoFusion", Fusion::None),
                ("Fusion-A", Fusion::A),
                ("Fusion-B", Fusion::B),
                ("Fusion-C", Fusion::C),
            ] {
                for graphs in [false, true] {
                    jobs.push(Job {
                        figure: "9",
                        series: format!("{name} (ODF-{odf})"),
                        variant: Variant::CharmD,
                        nodes,
                        global: Dims::cube(768),
                        odf,
                        fusion,
                        graphs,
                        sync: SyncMode::Optimized,
                    });
                }
            }
        }
    }
    exec(jobs, e)
}

/// Compute the Fig. 9 speedups: for every (series, nodes), the ratio of
/// the no-graphs time to the graphs time.
pub fn fig9_speedups(rows: &[Row]) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| !r.graphs) {
        if let Some(g) = rows
            .iter()
            .find(|g| g.graphs && g.series == r.series && g.nodes == r.nodes)
        {
            out.push((r.series.clone(), r.nodes, r.time_us / g.time_us));
        }
    }
    out.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_dims_conserve_per_node_volume() {
        for k in 0..10 {
            let nodes = 1usize << k;
            let d = weak_dims(192, nodes);
            assert_eq!(d.count(), 192 * 192 * 192 * nodes, "nodes={nodes}");
        }
    }

    #[test]
    fn weak_dims_grow_one_axis_at_a_time() {
        assert_eq!(weak_dims(100, 1), Dims::new(100, 100, 100));
        assert_eq!(weak_dims(100, 2), Dims::new(100, 100, 200));
        assert_eq!(weak_dims(100, 4), Dims::new(100, 200, 200));
        assert_eq!(weak_dims(100, 8), Dims::new(200, 200, 200));
        assert_eq!(weak_dims(100, 512), Dims::new(800, 800, 800));
    }

    #[test]
    fn fig9_speedups_pair_rows() {
        let mk = |graphs, t| Row {
            figure: "9".into(),
            series: "s (ODF-1)".into(),
            nodes: 4,
            odf: 1,
            fusion: "None".into(),
            graphs,
            time_us: t,
            cpu_util: 0.0,
            seeds: 1,
        };
        let rows = vec![mk(false, 100.0), mk(true, 50.0)];
        let sp = fig9_speedups(&rows);
        assert_eq!(sp.len(), 1);
        assert!((sp[0].2 - 2.0).abs() < 1e-12);
    }
}
