//! Microbenchmarks of the task runtime: message scheduling throughput,
//! reductions, and the sync-vs-async completion comparison of Fig. 4.

use criterion::{criterion_group, criterion_main, Criterion};

use gaat_bench::ablation::sync_vs_async_completion;
use gaat_rt::{Callback, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig, Simulation};

const E_PING: EntryId = EntryId(0);

struct Ping {
    peer: Option<ChareId>,
    got: u64,
    limit: u64,
}

impl Chare for Ping {
    fn receive(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) {
        self.got += 1;
        if self.got < self.limit {
            if let Some(p) = self.peer {
                ctx.send(p, Envelope::empty(E_PING).with_bytes(64));
            }
        }
    }
}

fn pingpong(remote: bool, hops: u64) -> gaat_sim::SimTime {
    let cfg = if remote {
        MachineConfig::validation(2, 1)
    } else {
        MachineConfig::validation(1, 1)
    };
    let mut sim = Simulation::new(cfg);
    let a = sim.machine.create_chare(
        0,
        Box::new(Ping {
            peer: None,
            got: 0,
            limit: hops,
        }),
    );
    let pe_b = if remote { 1 } else { 0 };
    let b = sim.machine.create_chare(
        pe_b,
        Box::new(Ping {
            peer: Some(a),
            got: 0,
            limit: hops,
        }),
    );
    sim.machine
        .chare_for_setup(a)
        .downcast_mut::<Ping>()
        .expect("ping")
        .peer = Some(b);
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.inject(sim, a, Envelope::empty(E_PING));
    }
    sim.run();
    sim.now()
}

fn bench_pingpong(c: &mut Criterion) {
    c.bench_function("runtime/pingpong_local_x1000", |b| {
        b.iter(|| pingpong(false, 1000))
    });
    c.bench_function("runtime/pingpong_remote_x1000", |b| {
        b.iter(|| pingpong(true, 1000))
    });
}

struct Contributor {
    reducer: u64,
    n: usize,
    cb: Callback,
}
impl Chare for Contributor {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        if env.entry == EntryId(0) {
            ctx.contribute(self.reducer, env.refnum, 1.0, self.n, self.cb);
        }
    }
}
struct Sink {
    got: u64,
}
impl Chare for Sink {
    fn receive(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {
        self.got += 1;
    }
}

fn bench_reduction(c: &mut Criterion) {
    c.bench_function("runtime/reduction_256_contributors", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(MachineConfig::validation(8, 4));
            let root = sim.machine.create_chare(0, Box::new(Sink { got: 0 }));
            let reducer = sim.machine.create_reducer();
            let cb = Callback::to(root, EntryId(0));
            let ids: Vec<ChareId> = (0..256)
                .map(|i| {
                    sim.machine.create_chare(
                        i % 32,
                        Box::new(Contributor {
                            reducer,
                            n: 256,
                            cb,
                        }),
                    )
                })
                .collect();
            {
                let Simulation { sim, machine, .. } = &mut sim;
                for &id in &ids {
                    machine.inject(sim, id, Envelope::empty(EntryId(0)));
                }
            }
            sim.run();
            assert_eq!(sim.machine.chare_as::<Sink>(root).got, 1);
            sim.now()
        })
    });
}

fn bench_sync_vs_async(c: &mut Criterion) {
    c.bench_function("runtime/fig4_sync_completion", |b| {
        b.iter(|| sync_vs_async_completion(4, 16, 50).0)
    });
    c.bench_function("runtime/fig4_async_completion", |b| {
        b.iter(|| sync_vs_async_completion(4, 16, 50).1)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pingpong, bench_reduction, bench_sync_vs_async
}
criterion_main!(benches);
