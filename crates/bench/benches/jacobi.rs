//! End-to-end Jacobi3D runs of all four versions (small phantom
//! configurations) — wall-clock cost of simulating each variant, and a
//! functional-mode run to track the overhead of real numerics.

use criterion::{criterion_group, criterion_main, Criterion};

use gaat_jacobi3d::{run_charm, run_mpi, CommMode, Dims, Fusion, JacobiConfig};
use gaat_rt::MachineConfig;
use gaat_sweep3d::{run_sweep, SweepConfig};

fn cfg(nodes: usize, comm: CommMode) -> JacobiConfig {
    let mut c = JacobiConfig::new(MachineConfig::summit(nodes), Dims::cube(192));
    c.comm = comm;
    c.iters = 10;
    c.warmup = 2;
    c
}

fn bench_variants(c: &mut Criterion) {
    c.bench_function("jacobi/mpi_h_2nodes", |b| {
        b.iter(|| run_mpi(cfg(2, CommMode::HostStaging)).time_per_iter)
    });
    c.bench_function("jacobi/mpi_d_2nodes", |b| {
        b.iter(|| run_mpi(cfg(2, CommMode::GpuAware)).time_per_iter)
    });
    c.bench_function("jacobi/charm_h_odf4_2nodes", |b| {
        b.iter(|| {
            let mut c = cfg(2, CommMode::HostStaging);
            c.odf = 4;
            run_charm(c).time_per_iter
        })
    });
    c.bench_function("jacobi/charm_d_odf4_2nodes", |b| {
        b.iter(|| {
            let mut c = cfg(2, CommMode::GpuAware);
            c.odf = 4;
            run_charm(c).time_per_iter
        })
    });
    c.bench_function("jacobi/charm_d_fusion_c_graphs_2nodes", |b| {
        b.iter(|| {
            let mut c = cfg(2, CommMode::GpuAware);
            c.odf = 4;
            c.fusion = Fusion::C;
            c.graphs = true;
            run_charm(c).time_per_iter
        })
    });
}

fn bench_functional_mode(c: &mut Criterion) {
    c.bench_function("jacobi/charm_d_functional_24cube", |b| {
        b.iter(|| {
            let mut c = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::cube(24));
            c.comm = CommMode::GpuAware;
            c.odf = 2;
            c.iters = 5;
            c.warmup = 1;
            let r = run_charm(c);
            r.checksum.expect("real buffers")
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    c.bench_function("sweep/charm_d_odf4_2nodes", |b| {
        b.iter(|| {
            let mut cfg = SweepConfig::new(MachineConfig::summit(2), Dims::cube(192));
            cfg.odf = 4;
            cfg.sweeps = 8;
            cfg.warmup = 2;
            run_sweep(cfg).time_per_sweep
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_variants, bench_functional_mode, bench_sweep
}
criterion_main!(benches);
