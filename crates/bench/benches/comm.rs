//! Microbenchmarks of the communication stack (fabric + UCX protocols),
//! driven through the full machine so staging copies hit the DMA model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gaat_bench::ablation::channel_vs_gpu_messaging;
use gaat_net::{Fabric, NetMsg, NetParams, NodeId, TrafficClass};
use gaat_sim::{SimDuration, SimRng, SimTime};

fn bench_fabric_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm/fabric_commit");
    for &msgs in &[1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                let mut f = Fabric::new(64, NetParams::default(), SimRng::new(1));
                let mut last = SimTime::ZERO;
                for i in 0..msgs {
                    let m = NetMsg {
                        src: NodeId(i % 64),
                        dst: NodeId((i * 7 + 1) % 64),
                        bytes: 4096,
                        extra_latency: SimDuration::ZERO,
                        token: i as u64,
                        class: TrafficClass::Data,
                        attempt: 0,
                    };
                    last = f.commit(SimTime::from_ns(i as u64 * 10), &m);
                }
                last
            })
        });
    }
    g.finish();
}

/// Full protocol round trips through the machine: the Channel API path
/// (GPUDirect rendezvous for a 96 KiB device buffer).
fn bench_channel_pingpong(c: &mut Criterion) {
    c.bench_function("comm/channel_pingpong_96k_x20", |b| {
        b.iter(|| channel_vs_gpu_messaging(96 << 10, 20).0)
    });
}

fn bench_gpu_messaging_pingpong(c: &mut Criterion) {
    c.bench_function("comm/gpu_messaging_pingpong_96k_x20", |b| {
        b.iter(|| channel_vs_gpu_messaging(96 << 10, 20).1)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fabric_commit, bench_channel_pingpong, bench_gpu_messaging_pingpong
}
criterion_main!(benches);
