//! Microbenchmarks of the simulated GPU device: stream-op throughput,
//! processor-sharing accounting under contention, and graph execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gaat_gpu::{Device, DeviceId, GpuTimingModel, GraphBuilder, KernelSpec, NodeIndex, Op};
use gaat_sim::{SimDuration, SimTime};

fn drain(d: &mut Device) -> SimTime {
    let mut now = SimTime::ZERO;
    loop {
        match d.advance(now) {
            Some(w) => now = w,
            None => return now,
        }
    }
}

fn bench_stream_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/stream_kernels");
    for &n in &[100usize, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
                let s = d.create_stream(0);
                for _ in 0..n {
                    d.enqueue(
                        s,
                        Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(2))),
                    );
                }
                drain(&mut d)
            })
        });
    }
    g.finish();
}

fn bench_concurrent_streams(c: &mut Criterion) {
    c.bench_function("gpu/64_streams_processor_sharing", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
            let streams: Vec<_> = (0..64).map(|i| d.create_stream((i % 3) as usize)).collect();
            for &s in &streams {
                for _ in 0..20 {
                    d.enqueue(
                        s,
                        Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(5))),
                    );
                }
            }
            drain(&mut d)
        })
    });
}

fn bench_graph_vs_stream(c: &mut Criterion) {
    let chain = 64usize;
    let mut g = c.benchmark_group("gpu/chain64");
    g.bench_function("stream", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
            let s = d.create_stream(0);
            for _ in 0..chain {
                d.enqueue(
                    s,
                    Op::kernel(KernelSpec::phantom("k", SimDuration::from_us(1))),
                );
            }
            drain(&mut d)
        })
    });
    g.bench_function("graph", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceId(0), GpuTimingModel::default());
            let s = d.create_stream(0);
            let mut builder = GraphBuilder::new();
            let mut prev: Option<NodeIndex> = None;
            for _ in 0..chain {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(builder.kernel(
                    KernelSpec::phantom("k", SimDuration::from_us(1)),
                    0,
                    &deps,
                ));
            }
            let graph = d.register_graph(builder.build());
            d.enqueue(s, Op::graph(graph));
            drain(&mut d)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_stream_kernels, bench_concurrent_streams, bench_graph_vs_stream
}
criterion_main!(benches);
