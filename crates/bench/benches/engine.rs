//! Microbenchmarks of the discrete-event engine: scheduling throughput,
//! cascading events, and cancellation overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gaat_sim::{Sim, SimDuration, SimTime};

fn bench_schedule_and_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/schedule_drain");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim: Sim<u64> = Sim::new();
                let mut w = 0u64;
                for i in 0..n {
                    sim.at(SimTime::from_ns((i % 97) as u64), |w: &mut u64, _| *w += 1);
                }
                sim.run(&mut w);
                assert_eq!(w, n as u64);
                w
            })
        });
    }
    g.finish();
}

fn bench_cascade(c: &mut Criterion) {
    c.bench_function("engine/cascade_chain_100k", |b| {
        b.iter(|| {
            fn hop(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if *w < 100_000 {
                    sim.after(SimDuration::from_ns(3), hop);
                }
            }
            let mut sim: Sim<u64> = Sim::new();
            let mut w = 0u64;
            sim.soon(hop);
            sim.run(&mut w);
            w
        })
    });
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("engine/cancel_half_of_50k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut w = 0u64;
            let ids: Vec<_> = (0..50_000u64)
                .map(|i| sim.at(SimTime::from_ns(i), |w: &mut u64, _| *w += 1))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            sim.run(&mut w);
            assert_eq!(w, 25_000);
            w
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_schedule_and_drain, bench_cascade, bench_cancellation
}
criterion_main!(benches);
