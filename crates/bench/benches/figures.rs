//! `cargo bench` entry points that exercise every figure of the paper at
//! quick effort — one benchmark per figure, so the full evaluation
//! pipeline stays green. The real (paper-scale) regeneration is
//! `cargo run --release -p gaat-bench --bin figures -- --effort full`.

use criterion::{criterion_group, criterion_main, Criterion};

use gaat_bench::{fig6, fig7a, fig7b, fig7c, fig8, fig9, Effort};

fn quick() -> Effort {
    let mut e = Effort::quick();
    e.max_nodes = 4;
    e.iters = 4;
    e.warmup = 1;
    e
}

fn bench_figures(c: &mut Criterion) {
    let e = quick();
    c.bench_function("figures/fig6_quick", |b| b.iter(|| fig6(&e).len()));
    c.bench_function("figures/fig7a_quick", |b| b.iter(|| fig7a(&e).len()));
    c.bench_function("figures/fig7b_quick", |b| b.iter(|| fig7b(&e).len()));
    c.bench_function("figures/fig7c_quick", |b| {
        // strong scaling starts at 8 nodes; allow it
        let mut e = quick();
        e.max_nodes = 8;
        b.iter(|| fig7c(&e).len())
    });
    c.bench_function("figures/fig8_quick", |b| b.iter(|| fig8(&e).len()));
    c.bench_function("figures/fig9_quick", |b| b.iter(|| fig9(&e).len()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figures
}
criterion_main!(benches);
