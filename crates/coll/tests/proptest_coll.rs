//! Property-based validation of the collective schedules: arbitrary
//! payload sizes, rank counts (including non-powers-of-two), chunk
//! sizes, and placements must match the order-aware scalar references
//! bit for bit — and keep matching when the fabric drops messages and
//! the reliable transport retries them.

use proptest::prelude::*;

use gaat_coll::{
    build, run, run_coll, validate_against_reference, Algorithm, CollAppConfig, CollOp,
    RankPlacement,
};
use gaat_rt::MachineConfig;
use gaat_sim::FaultPlan;

fn any_op() -> impl Strategy<Value = CollOp> {
    prop_oneof![
        Just(CollOp::AllReduce),
        Just(CollOp::ReduceScatter),
        Just(CollOp::AllGather),
        Just(CollOp::Broadcast),
        Just(CollOp::AllToAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32, // each case runs a full simulation + reference solve
        ..ProptestConfig::default()
    })]

    #[test]
    fn allreduce_matches_reference_on_arbitrary_configs(
        nodes in 1usize..5,
        pes in 1usize..4,
        count in 1usize..300,
        chunk in 1usize..64,
        rounds in 1usize..3,
        tree in any::<bool>(),
        round_robin in any::<bool>(),
    ) {
        let mut cfg = CollAppConfig::new(
            MachineConfig::validation(nodes, pes),
            CollOp::AllReduce,
            if tree { Algorithm::Tree } else { Algorithm::Ring },
            count,
        );
        cfg.chunk = chunk;
        cfg.rounds = rounds;
        cfg.warmup = rounds - 1;
        cfg.placement = if round_robin {
            RankPlacement::RoundRobin
        } else {
            RankPlacement::Packed
        };
        let (mut sim, ids, sh) = build(cfg);
        run(&mut sim, &ids, &sh);
        let compared = validate_against_reference(&sim, &ids, &sh);
        prop_assert_eq!(compared, count * nodes * pes);
    }

    #[test]
    fn every_collective_matches_reference(
        nodes in 1usize..4,
        pes in 1usize..4,
        count in 1usize..120,
        chunk in 1usize..40,
        op in any_op(),
        tree in any::<bool>(),
    ) {
        let mut cfg = CollAppConfig::new(
            MachineConfig::validation(nodes, pes),
            op,
            if tree { Algorithm::Tree } else { Algorithm::Ring },
            count,
        );
        cfg.chunk = chunk;
        let (mut sim, ids, sh) = build(cfg);
        run(&mut sim, &ids, &sh);
        let compared = validate_against_reference(&sim, &ids, &sh);
        prop_assert!(compared > 0);
    }
}

/// Message loss with the reliable transport on must not change a single
/// output bit: the retries reorder wire traffic, but lane sequencing
/// keeps the combine order — and therefore the floating-point result —
/// identical to the clean run.
#[test]
fn allreduce_is_bit_identical_under_message_loss() {
    let mk = |drop: f64| {
        let mut machine = MachineConfig::validation(2, 2);
        if drop > 0.0 {
            machine.faults = FaultPlan {
                seed: 7,
                drop_prob: drop,
                ..FaultPlan::none()
            };
            machine.ucx.reliability.enabled = true;
        }
        let mut cfg = CollAppConfig::new(machine, CollOp::AllReduce, Algorithm::Ring, 300);
        cfg.chunk = 16;
        cfg.rounds = 2;
        cfg.warmup = 1;
        cfg
    };

    let (mut lossy_sim, ids, sh) = build(mk(0.05));
    run(&mut lossy_sim, &ids, &sh);
    let retransmits = lossy_sim.machine.ucx.stats().retransmits;
    assert!(retransmits > 0, "drop plan should force retries");
    // The strongest statement: the lossy run still matches the scalar
    // reference exactly (which the clean run matches too).
    validate_against_reference(&lossy_sim, &ids, &sh);

    let clean = run_coll(mk(0.0));
    let lossy_time: u64 = {
        let mut warm = gaat_sim::SimTime::ZERO;
        for &id in &ids {
            let c = lossy_sim.machine.chare_as::<gaat_coll::CollChare>(id);
            warm = warm.max(c.done_at.expect("finished"));
        }
        warm.since(gaat_sim::SimTime::ZERO).as_ns()
    };
    assert!(
        lossy_time > clean.total.as_ns(),
        "retries should cost simulated time"
    );
}
