//! # gaat-coll — GPU-aware collectives over the fabric
//!
//! NCCL-style collectives expressed as chunked, pipelined asynchronous
//! tasks on the chare runtime: ring and binomial-tree **allreduce**,
//! ring **reduce-scatter** and **allgather**, tree **broadcast**, and
//! pairwise **alltoall** (uniform and per-pair-counted for MoE
//! routing). Every transfer goes through the Channel API → gaat-ucx →
//! fabric path, so protocol selection (GPUDirect vs pipelined staging),
//! D-mod-k routing, spine contention, and link statistics all apply;
//! every reduction is a priced GPU kernel with a functional elementwise
//! `+=` effect, validated bit-identical against order-aware scalar
//! references.
//!
//! Layers:
//! - [`plan`] — pure schedules: per-rank, per-lane step lists. Lanes are
//!   independent element ranges; their concurrent progress is the
//!   pipelining.
//! - [`reference`] — sequential scalar references replicating each
//!   schedule's combine order (floating-point addition is not
//!   associative, so bit-identity requires order-aware references).
//! - [`member`] — the participant state machine a chare embeds.
//! - [`app`] — a standalone proxy app running back-to-back collectives,
//!   used by `coll_speed`, `profile_run --collective`, and the tests.

#![warn(missing_docs)]

pub mod app;
pub mod member;
pub mod plan;
pub mod reference;

pub use app::{
    build, payload_bytes, run, run_coll, validate_against_reference, CollAppConfig, CollChare,
    CollResult, CollShared,
};
pub use member::{CollEntries, CollMember, MemberEvent, MemberStats};
pub use plan::{alltoallv_plan, plan, Algorithm, CollOp, CollPlan, RankPlacement};
