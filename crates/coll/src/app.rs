//! Standalone collective proxy app: one participant chare per rank,
//! running `rounds` back-to-back collectives. This is what the
//! `coll_speed` bench, `profile_run --collective`, and the correctness
//! tests drive.

use std::sync::Arc;

use gaat_gpu::Space;
use gaat_rt::{
    BufRange, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig, RunOutcome, Simulation,
};
use gaat_sim::{SimDuration, SimTime};

use crate::member::{wire_members, CollEntries, CollMember, MemberEvent, MemberStats};
use crate::plan::{
    even_split, place_rank, plan, reduce_scatter_owner, ring_lanes, tree_lanes, uses_out_buffer,
    Algorithm, CollOp, CollPlan, RankPlacement,
};
use crate::reference;

/// Begin execution.
pub const E_START: EntryId = EntryId(0);
/// A channel receive landed (member event).
pub const E_RECV: EntryId = EntryId(1);
/// A channel send's buffer is reusable (member event).
pub const E_SENT: EntryId = EntryId(2);
/// A reduction / local-copy kernel retired (member event).
pub const E_REDUCED: EntryId = EntryId(3);

/// Experiment description.
#[derive(Debug, Clone)]
pub struct CollAppConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// Which collective.
    pub op: CollOp,
    /// Ring or tree (allreduce only; others use their canonical shape).
    pub algorithm: Algorithm,
    /// Element count (per-op semantics, see [`plan`]).
    pub count: usize,
    /// Pipelining chunk: target elements per wire transfer.
    pub chunk: usize,
    /// Timed collective rounds.
    pub rounds: usize,
    /// Warm-up rounds excluded from timing.
    pub warmup: usize,
    /// Rank→PE mapping.
    pub placement: RankPlacement,
    /// Participant count; 0 means one rank per PE.
    pub ranks: usize,
}

impl CollAppConfig {
    /// Defaults: one timed round, 64Ki-element chunks, packed placement,
    /// one rank per PE.
    pub fn new(machine: MachineConfig, op: CollOp, algorithm: Algorithm, count: usize) -> Self {
        CollAppConfig {
            machine,
            op,
            algorithm,
            count,
            chunk: 1 << 16,
            rounds: 1,
            warmup: 0,
            placement: RankPlacement::Packed,
            ranks: 0,
        }
    }

    /// Effective participant count.
    pub fn effective_ranks(&self) -> usize {
        if self.ranks == 0 {
            self.machine.total_pes()
        } else {
            self.ranks
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct CollResult {
    /// Mean time per collective round (post-warm-up).
    pub time_per_round: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
    /// Merged member counters.
    pub stats: MemberStats,
}

impl CollResult {
    /// NCCL-convention bus bandwidth in bytes/s for this op, given the
    /// per-rank payload `bytes` and the measured round time.
    pub fn bus_bandwidth(&self, op: CollOp, ranks: usize, bytes: u64) -> f64 {
        let t = self.time_per_round.as_ns() as f64 * 1e-9;
        if t == 0.0 {
            return 0.0;
        }
        let p = ranks as f64;
        let factor = match op {
            CollOp::AllReduce => 2.0 * (p - 1.0) / p,
            CollOp::ReduceScatter | CollOp::AllGather | CollOp::AllToAll => (p - 1.0) / p,
            CollOp::Broadcast => 1.0,
        };
        bytes as f64 * factor / t
    }
}

/// Shared run parameters.
#[derive(Debug)]
pub struct CollShared {
    /// The experiment.
    pub cfg: CollAppConfig,
    /// The schedule.
    pub plan: CollPlan,
}

/// One collective participant.
pub struct CollChare {
    sh: Arc<CollShared>,
    /// The embedded executor.
    pub member: CollMember,
    round: usize,
    /// Completion time of the warm-up rounds.
    pub warm_at: Option<SimTime>,
    /// Completion time of the final round.
    pub done_at: Option<SimTime>,
}

impl CollChare {
    fn total(&self) -> usize {
        self.sh.cfg.rounds + self.sh.cfg.warmup
    }

    fn start(&mut self, ctx: &mut Ctx<'_>) {
        while self.round < self.total() {
            if !self.member.begin(ctx) {
                return;
            }
            self.advance(ctx);
        }
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        if self.round == self.sh.cfg.warmup {
            self.warm_at = Some(ctx.start_time());
        }
        if self.round == self.total() {
            self.done_at = Some(ctx.start_time());
        }
    }
}

impl Chare for CollChare {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let ev = match env.entry {
            E_START => {
                self.start(ctx);
                return;
            }
            E_RECV => MemberEvent::Recv,
            E_SENT => MemberEvent::Sent,
            E_REDUCED => MemberEvent::Reduced,
            other => panic!("unknown entry {other:?}"),
        };
        if self.member.on_event(ctx, ev, env.refnum) {
            self.advance(ctx);
            self.start(ctx);
        }
    }
}

/// Build the collective simulation.
pub fn build(cfg: CollAppConfig) -> (Simulation, Vec<ChareId>, Arc<CollShared>) {
    assert!(cfg.rounds > 0, "at least one timed round");
    let ranks = cfg.effective_ranks();
    let p = plan(cfg.op, cfg.algorithm, ranks, cfg.count, cfg.chunk);
    let mut sim = Simulation::new(cfg.machine.clone());
    let real = cfg.machine.real_buffers;
    let sh = Arc::new(CollShared {
        cfg: cfg.clone(),
        plan: p,
    });
    let base = sim.machine.chare_count();
    let ids: Vec<ChareId> = (0..ranks).map(|i| ChareId(base + i)).collect();
    let entries = CollEntries {
        recv: E_RECV,
        sent: E_SENT,
        reduced: E_REDUCED,
    };
    #[allow(clippy::needless_range_loop)]
    for r in 0..ranks {
        let pe = place_rank(
            r,
            ranks,
            cfg.machine.nodes,
            cfg.machine.pes_per_node,
            cfg.placement,
        );
        let dev = sim.machine.pe_device(pe);
        let device = &mut sim.machine.devices[dev.0];
        let in_len = sh.plan.in_elems[r].max(1);
        let data = device.mem.alloc(Space::Device, in_len, real);
        let out = uses_out_buffer(cfg.op).then(|| {
            device
                .mem
                .alloc(Space::Device, sh.plan.out_elems[r].max(1), real)
        });
        let stream = device.create_stream(2);
        let member = CollMember::new(
            r,
            sh.plan.members[r].clone(),
            uses_out_buffer(cfg.op),
            data,
            0,
            out,
            0,
            stream,
            entries,
            0,
            device,
            real,
        );
        if real && sh.plan.in_elems[r] > 0 {
            let vals: Vec<f64> = (0..sh.plan.in_elems[r])
                .map(|i| reference::input_value(r, i))
                .collect();
            device.mem.write(BufRange::new(data, 0, vals.len()), &vals);
        }
        device.assert_memory_fits();
        let chare = CollChare {
            sh: sh.clone(),
            member,
            round: 0,
            warm_at: if cfg.warmup == 0 {
                Some(SimTime::ZERO)
            } else {
                None
            },
            done_at: None,
        };
        let id = sim.machine.create_chare(pe, Box::new(chare));
        assert_eq!(id, ids[r]);
    }
    wire_members(&mut sim.machine, &ids, &sh.plan, |any| {
        &mut any.downcast_mut::<CollChare>().expect("coll chare").member
    });
    (sim, ids, sh)
}

/// Run to completion and collect results.
pub fn run(sim: &mut Simulation, ids: &[ChareId], sh: &CollShared) -> CollResult {
    {
        let Simulation { sim, machine, .. } = sim;
        machine.broadcast(sim, ids, E_START, 0);
    }
    assert_eq!(sim.run(), RunOutcome::Drained, "collective should quiesce");
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    let mut stats = MemberStats::default();
    for &id in ids {
        let c = sim.machine.chare_as::<CollChare>(id);
        warm = warm.max(c.warm_at.expect("warmed"));
        done = done.max(c.done_at.expect("finished"));
        stats.merge(&c.member.stats);
    }
    CollResult {
        time_per_round: done.since(warm) / sh.cfg.rounds as u64,
        total: done.since(SimTime::ZERO),
        stats,
    }
}

/// Convenience: build + run.
pub fn run_coll(cfg: CollAppConfig) -> CollResult {
    let (mut sim, ids, sh) = build(cfg);
    run(&mut sim, &ids, &sh)
}

/// Compare every rank's defined output region against the scalar
/// reference, bit for bit. Returns elements compared. Requires real
/// buffers; reduce-scatter additionally requires a single round (its
/// later rounds consume unspecified partial sums).
#[allow(clippy::needless_range_loop)]
pub fn validate_against_reference(sim: &Simulation, ids: &[ChareId], sh: &CollShared) -> usize {
    assert!(sh.cfg.machine.real_buffers, "validation needs real buffers");
    let cfg = &sh.cfg;
    let ranks = cfg.effective_ranks();
    let total_rounds = cfg.rounds + cfg.warmup;
    let count = cfg.count;
    let mut state = reference::initial_inputs(ranks, sh.plan.in_elems[0]);
    let mut compared = 0;
    match cfg.op {
        CollOp::AllReduce => {
            let lanes = match cfg.algorithm {
                Algorithm::Ring => ring_lanes(count, ranks, cfg.chunk),
                Algorithm::Tree => tree_lanes(count, cfg.chunk),
            };
            for _ in 0..total_rounds {
                let out = reference::allreduce(cfg.algorithm, ranks, count, lanes, &state);
                state = vec![out; ranks];
            }
            for r in 0..ranks {
                let got = read_member_data(sim, ids[r], count);
                assert_eq!(got, state[r], "allreduce rank {r}");
                compared += count;
            }
        }
        CollOp::ReduceScatter => {
            assert_eq!(total_rounds, 1, "reduce-scatter validates one round");
            let lanes = ring_lanes(count, ranks, cfg.chunk);
            for r in 0..ranks {
                let got = read_member_data(sim, ids[r], count);
                for (off, vals) in reference::reduce_scatter(ranks, count, lanes, &state, r) {
                    assert_eq!(
                        &got[off..off + vals.len()],
                        &vals[..],
                        "reduce-scatter rank {r} segment {}",
                        reduce_scatter_owner(r, ranks)
                    );
                    compared += vals.len();
                }
            }
        }
        CollOp::AllGather => {
            let lanes = ring_lanes(count, ranks, cfg.chunk);
            for _ in 0..total_rounds {
                let out = reference::allgather(ranks, count, lanes, &state);
                state = vec![out; ranks];
            }
            for r in 0..ranks {
                let got = read_member_data(sim, ids[r], count);
                assert_eq!(got, state[r], "allgather rank {r}");
                compared += count;
            }
        }
        CollOp::Broadcast => {
            let out = reference::broadcast(&state);
            for r in 0..ranks {
                let got = read_member_data(sim, ids[r], count);
                assert_eq!(got, out, "broadcast rank {r}");
                compared += count;
            }
        }
        CollOp::AllToAll => {
            for r in 0..ranks {
                let want = reference::alltoall(ranks, count, &state, r);
                let got = read_member_out(sim, ids[r], ranks * count);
                assert_eq!(got, want, "alltoall rank {r}");
                compared += want.len();
            }
        }
    }
    compared
}

fn read_member_data(sim: &Simulation, id: ChareId, len: usize) -> Vec<f64> {
    let c = sim.machine.chare_as::<CollChare>(id);
    let pe = sim.machine.pe_of(id);
    let dev = sim.machine.pe_device(pe);
    sim.machine.devices[dev.0]
        .mem
        .read(BufRange::new(c.member.data_buffer(), 0, len))
        .expect("validation needs real buffers")
}

fn read_member_out(sim: &Simulation, id: ChareId, len: usize) -> Vec<f64> {
    let c = sim.machine.chare_as::<CollChare>(id);
    let pe = sim.machine.pe_of(id);
    let dev = sim.machine.pe_device(pe);
    sim.machine.devices[dev.0]
        .mem
        .read(BufRange::new(
            c.member.out_buffer().expect("alltoall has an out buffer"),
            0,
            len,
        ))
        .expect("validation needs real buffers")
}

/// Logical payload bytes per rank for bus-bandwidth accounting.
pub fn payload_bytes(op: CollOp, ranks: usize, count: usize) -> u64 {
    match op {
        CollOp::AllReduce | CollOp::ReduceScatter | CollOp::AllGather | CollOp::Broadcast => {
            count as u64 * 8
        }
        CollOp::AllToAll => (ranks * count) as u64 * 8,
    }
}

/// A deterministic fingerprint of the defined outputs (for lossy-run
/// comparisons): the XOR of every output element's bit pattern.
pub fn output_fingerprint(sim: &Simulation, ids: &[ChareId], sh: &CollShared) -> u64 {
    let cfg = &sh.cfg;
    let ranks = cfg.effective_ranks();
    let mut h = 0u64;
    #[allow(clippy::needless_range_loop)]
    for r in 0..ranks {
        let vals = if uses_out_buffer(cfg.op) {
            read_member_out(sim, ids[r], sh.plan.out_elems[r])
        } else if cfg.op == CollOp::ReduceScatter {
            let lanes = ring_lanes(cfg.count, ranks, cfg.chunk);
            let mut v = Vec::new();
            let all = read_member_data(sim, ids[r], cfg.count);
            let j = reduce_scatter_owner(r, ranks);
            for l in 0..lanes {
                let (lo, llen) = even_split(cfg.count, lanes, l);
                let (o, len) = even_split(llen, ranks, j);
                v.extend_from_slice(&all[lo + o..lo + o + len]);
            }
            v
        } else {
            read_member_data(sim, ids[r], cfg.count)
        };
        for (i, v) in vals.iter().enumerate() {
            h ^= v.to_bits().rotate_left((i % 63) as u32);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_OPS: [CollOp; 5] = [
        CollOp::AllReduce,
        CollOp::ReduceScatter,
        CollOp::AllGather,
        CollOp::Broadcast,
        CollOp::AllToAll,
    ];

    #[test]
    fn all_collectives_match_reference_non_power_of_two() {
        // 2 nodes × 3 PEs = 6 ranks; 3 nodes × 1 PE = 3 ranks.
        for (nodes, pes) in [(2usize, 3usize), (3, 1)] {
            for op in ALL_OPS {
                for alg in [Algorithm::Ring, Algorithm::Tree] {
                    let mut cfg = CollAppConfig::new(
                        MachineConfig::validation(nodes, pes),
                        op,
                        alg,
                        37, // non-divisible by rank count
                    );
                    cfg.chunk = 5;
                    let (mut sim, ids, sh) = build(cfg);
                    run(&mut sim, &ids, &sh);
                    let n = validate_against_reference(&sim, &ids, &sh);
                    assert!(n > 0, "{op:?}/{alg:?} compared nothing");
                }
            }
        }
    }

    #[test]
    fn multi_round_allreduce_matches_reference() {
        for alg in [Algorithm::Ring, Algorithm::Tree] {
            let mut cfg =
                CollAppConfig::new(MachineConfig::validation(2, 2), CollOp::AllReduce, alg, 64);
            cfg.rounds = 2;
            cfg.warmup = 1;
            cfg.chunk = 16;
            let (mut sim, ids, sh) = build(cfg);
            run(&mut sim, &ids, &sh);
            validate_against_reference(&sim, &ids, &sh);
        }
    }

    #[test]
    fn single_rank_collectives_complete() {
        for op in ALL_OPS {
            let cfg = CollAppConfig::new(MachineConfig::validation(1, 1), op, Algorithm::Ring, 16);
            let (mut sim, ids, sh) = build(cfg);
            let res = run(&mut sim, &ids, &sh);
            assert_eq!(res.stats.chunks, 0, "{op:?} single rank sends nothing");
            validate_against_reference(&sim, &ids, &sh);
        }
    }

    #[test]
    fn placement_does_not_change_results() {
        for placement in [RankPlacement::Packed, RankPlacement::RoundRobin] {
            let mut cfg = CollAppConfig::new(
                MachineConfig::validation(2, 3),
                CollOp::AllReduce,
                Algorithm::Ring,
                41,
            );
            cfg.placement = placement;
            cfg.chunk = 7;
            let (mut sim, ids, sh) = build(cfg);
            run(&mut sim, &ids, &sh);
            validate_against_reference(&sim, &ids, &sh);
        }
    }

    #[test]
    fn chunking_pipelines_large_ring_allreduce() {
        // Multiple lanes overlap wire time with reduction kernels; a
        // single monolithic lane cannot.
        let time = |chunk: usize| {
            let mut cfg = CollAppConfig::new(
                MachineConfig::summit(4),
                CollOp::AllReduce,
                Algorithm::Ring,
                1 << 21, // 16 MiB
            );
            cfg.chunk = chunk;
            cfg.rounds = 2;
            cfg.warmup = 1;
            run_coll(cfg).time_per_round
        };
        let pipelined = time(1 << 15);
        let monolithic = time(1 << 30);
        assert!(
            pipelined < monolithic,
            "chunked {pipelined} should beat monolithic {monolithic}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let mut cfg = CollAppConfig::new(
                MachineConfig::summit(2),
                CollOp::AllReduce,
                Algorithm::Ring,
                1 << 16,
            );
            cfg.rounds = 3;
            cfg.warmup = 1;
            run_coll(cfg)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.total, b.total);
        assert_eq!(a.stats, b.stats);
    }
}
