//! Sequential scalar references for every collective.
//!
//! Floating-point addition is not associative, so a reduction's result
//! depends on the order contributions are combined. The references here
//! apply the *same* combine order as the corresponding schedule — ring
//! accumulation starting at each segment's origin rank, binomial-tree
//! merging by level — as plain scalar loops, so the simulated collectives
//! must match them **bit for bit**, not just within a tolerance. The
//! device kernel computes `data += arrived`, i.e. `acc' = local + acc`,
//! and every loop below does the same.

use crate::plan::{even_split, reduce_scatter_owner, Algorithm};

/// SplitMix64 — deterministic value generator for test payloads.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic input payload: element `i` of rank `r`'s contribution.
/// Random mantissa bits in `[1, 2)` make combine-order bugs visible as
/// bit differences.
pub fn input_value(rank: usize, i: usize) -> f64 {
    let h = mix64(((rank as u64) << 40) ^ i as u64);
    1.0 + (h & 0xf_ffff) as f64 / 1_048_576.0
}

/// The initial per-rank buffers for a uniform collective of `count`
/// elements per rank.
pub fn initial_inputs(ranks: usize, count: usize) -> Vec<Vec<f64>> {
    (0..ranks)
        .map(|r| (0..count).map(|i| input_value(r, i)).collect())
        .collect()
}

/// Reduce one segment in ring order: the accumulator starts as rank
/// `origin`'s values and each subsequent ring hop applies
/// `acc' = local + acc`.
// `local + acc` (not `acc += local`) spells out the combine order the
// device kernel uses; keep the shape even though f64 `+` commutes.
#[allow(clippy::assign_op_pattern)]
fn ring_seg_reduce(inputs: &[Vec<f64>], origin: usize, offset: usize, len: usize) -> Vec<f64> {
    let p = inputs.len();
    let mut acc = inputs[origin][offset..offset + len].to_vec();
    for k in 1..p {
        let r = (origin + k) % p;
        for (i, a) in acc.iter_mut().enumerate() {
            *a = inputs[r][offset + i] + *a;
        }
    }
    acc
}

/// Allreduce: the result every rank ends with.
///
/// `lanes` must be the plan's lane count ([`crate::plan::ring_lanes`] /
/// [`crate::plan::tree_lanes`]) — for the ring schedule it determines
/// the segment geometry and therefore each element's combine order.
pub fn allreduce(
    alg: Algorithm,
    ranks: usize,
    count: usize,
    lanes: usize,
    inputs: &[Vec<f64>],
) -> Vec<f64> {
    assert_eq!(inputs.len(), ranks);
    match alg {
        Algorithm::Ring => {
            if ranks == 1 {
                return inputs[0].clone();
            }
            let mut out = vec![0.0; count];
            for l in 0..lanes {
                let (lo, llen) = even_split(count, lanes, l);
                for j in 0..ranks {
                    let (o, len) = even_split(llen, ranks, j);
                    out[lo + o..lo + o + len].copy_from_slice(&ring_seg_reduce(
                        inputs,
                        j,
                        lo + o,
                        len,
                    ));
                }
            }
            out
        }
        Algorithm::Tree => {
            // Binomial merge by level; lane slicing is elementwise-
            // invariant so `lanes` does not affect the result.
            let mut acc: Vec<Vec<f64>> = inputs.to_vec();
            let mut d = 0;
            while (1usize << d) < ranks {
                let stride = 1usize << (d + 1);
                let mut r = 0;
                while r < ranks {
                    let child = r + (1 << d);
                    if child < ranks {
                        let (left, right) = acc.split_at_mut(child);
                        let (a, c) = (&mut left[r], &right[0]);
                        for i in 0..count {
                            a[i] += c[i];
                        }
                    }
                    r += stride;
                }
                d += 1;
            }
            acc.swap_remove(0)
        }
    }
}

/// Reduce-scatter: the `(absolute offset, values)` pairs rank `r` owns
/// afterwards, one per lane (segment `reduce_scatter_owner(r)` of each
/// lane). The rest of the data buffer holds partial sums and is
/// unspecified.
pub fn reduce_scatter(
    ranks: usize,
    count: usize,
    lanes: usize,
    inputs: &[Vec<f64>],
    r: usize,
) -> Vec<(usize, Vec<f64>)> {
    assert_eq!(inputs.len(), ranks);
    let j = reduce_scatter_owner(r, ranks);
    (0..lanes)
        .map(|l| {
            let (lo, llen) = even_split(count, lanes, l);
            let (o, len) = even_split(llen, ranks, j);
            if ranks == 1 {
                (lo + o, inputs[0][lo + o..lo + o + len].to_vec())
            } else {
                (lo + o, ring_seg_reduce(inputs, j, lo + o, len))
            }
        })
        .collect()
}

/// Allgather: the full buffer every rank ends with. Rank `j`
/// contributes segment `j` of every lane.
pub fn allgather(ranks: usize, count: usize, lanes: usize, inputs: &[Vec<f64>]) -> Vec<f64> {
    assert_eq!(inputs.len(), ranks);
    let mut out = vec![0.0; count];
    for l in 0..lanes {
        let (lo, llen) = even_split(count, lanes, l);
        #[allow(clippy::needless_range_loop)]
        for j in 0..ranks {
            let (o, len) = even_split(llen, ranks, j);
            out[lo + o..lo + o + len].copy_from_slice(&inputs[j][lo + o..lo + o + len]);
        }
    }
    out
}

/// Broadcast from rank 0: everybody ends with rank 0's buffer.
pub fn broadcast(inputs: &[Vec<f64>]) -> Vec<f64> {
    inputs[0].clone()
}

/// Uniform alltoall with `block` elements per destination: rank `r`'s
/// output, whose block `q` is block `r` of rank `q`'s input.
pub fn alltoall(ranks: usize, block: usize, inputs: &[Vec<f64>], r: usize) -> Vec<f64> {
    assert_eq!(inputs.len(), ranks);
    let mut out = Vec::with_capacity(ranks * block);
    for input in inputs {
        out.extend_from_slice(&input[r * block..(r + 1) * block]);
    }
    out
}

/// Variable alltoall: rank `r`'s output under `counts[s][d]` elements
/// from `s` to `d`, send layout ordered by destination, receive layout
/// ordered by source.
pub fn alltoallv(counts: &[Vec<usize>], inputs: &[Vec<f64>], r: usize) -> Vec<f64> {
    let ranks = counts.len();
    let mut out = Vec::new();
    for q in 0..ranks {
        let off: usize = counts[q][..r].iter().sum();
        out.extend_from_slice(&inputs[q][off..off + counts[q][r]]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_irregular() {
        assert_eq!(input_value(3, 17), input_value(3, 17));
        assert_ne!(input_value(3, 17), input_value(3, 18));
        assert_ne!(input_value(3, 17), input_value(4, 17));
        assert!((1.0..2.0).contains(&input_value(0, 0)));
    }

    #[test]
    fn ring_and_tree_agree_in_value_not_bits() {
        // Same mathematical sum; usually different bits — that's the
        // point of order-aware references.
        let inputs = initial_inputs(5, 16);
        let ring = allreduce(Algorithm::Ring, 5, 16, 1, &inputs);
        let tree = allreduce(Algorithm::Tree, 5, 16, 1, &inputs);
        for i in 0..16 {
            assert!((ring[i] - tree[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn allreduce_of_one_rank_is_identity() {
        let inputs = initial_inputs(1, 8);
        assert_eq!(allreduce(Algorithm::Ring, 1, 8, 1, &inputs), inputs[0]);
        assert_eq!(allreduce(Algorithm::Tree, 1, 8, 1, &inputs), inputs[0]);
    }

    #[test]
    fn reduce_scatter_matches_allreduce_segments() {
        let (ranks, count, lanes) = (4, 24, 2);
        let inputs = initial_inputs(ranks, count);
        let full = allreduce(Algorithm::Ring, ranks, count, lanes, &inputs);
        for r in 0..ranks {
            for (off, vals) in reduce_scatter(ranks, count, lanes, &inputs, r) {
                assert_eq!(&full[off..off + vals.len()], &vals[..]);
            }
        }
    }

    #[test]
    fn alltoall_permutes_blocks() {
        let inputs = initial_inputs(3, 6); // block = 2
        let out = alltoall(3, 2, &inputs, 1);
        assert_eq!(&out[0..2], &inputs[0][2..4]);
        assert_eq!(&out[2..4], &inputs[1][2..4]);
        assert_eq!(&out[4..6], &inputs[2][2..4]);
    }

    #[test]
    fn alltoallv_respects_counts() {
        let counts = vec![vec![1, 2], vec![3, 0]];
        let inputs = vec![vec![10.0, 20.0, 30.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(alltoallv(&counts, &inputs, 0), vec![10.0, 1.0, 2.0, 3.0]);
        assert_eq!(alltoallv(&counts, &inputs, 1), vec![20.0, 30.0]);
    }
}
