//! The collective participant state machine.
//!
//! A [`CollMember`] lives inside a host chare and executes one rank's
//! [`MemberPlan`]: per lane, it posts the current step's channel
//! receive/send, launches the reduction (or lets direct receives land in
//! place), and advances when the receive has landed, the reduction
//! kernel has retired, and the outgoing buffer is reusable. Lanes
//! progress independently — that is the pipelining — while channel
//! sequence numbers stay aligned because both endpoints execute the same
//! per-lane schedule order.
//!
//! The host chare owns three entry methods and forwards them here; the
//! callback refnum is `tag | lane`, where `tag` distinguishes members
//! when a chare embeds several (gradient buckets, dispatch vs combine).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use gaat_gpu::{BufRange, BufferId, Device, MemoryPool, StreamId};
use gaat_rt::{
    create_channel, Callback, ChannelEnd, ChareId, Ctx, EntryId, KernelSpec, Machine, MemLoc, Op,
};

use crate::plan::{CollPlan, MemberPlan, Step};

/// Lane index carried in a local-copy completion refnum.
pub const LOCAL_LANE: u64 = 0xffff;

/// Mask extracting the lane from a member event refnum.
pub const LANE_MASK: u64 = 0xffff;

/// The three entry methods a host chare dedicates to a member.
#[derive(Debug, Clone, Copy)]
pub struct CollEntries {
    /// A channel receive landed.
    pub recv: EntryId,
    /// A channel send's buffer is reusable.
    pub sent: EntryId,
    /// A reduction or local-copy kernel retired (HAPI).
    pub reduced: EntryId,
}

/// Which member event an entry method maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberEvent {
    /// Receive landed.
    Recv,
    /// Send buffer reusable.
    Sent,
    /// Reduction / local copy retired.
    Reduced,
}

/// Traffic and progress counters for one member (merge across ranks for
/// the per-algorithm totals profile_run prints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberStats {
    /// Payload bytes pushed into channels.
    pub bytes: u64,
    /// Chunks (channel sends) issued.
    pub chunks: u64,
    /// Lane steps completed.
    pub steps: u64,
    /// Elements combined by reduction kernels.
    pub reduced_elems: u64,
    /// Collective rounds completed.
    pub rounds: u64,
}

impl MemberStats {
    /// Accumulate another member's counters.
    pub fn merge(&mut self, o: &MemberStats) {
        self.bytes += o.bytes;
        self.chunks += o.chunks;
        self.steps += o.steps;
        self.reduced_elems += o.reduced_elems;
        self.rounds += o.rounds;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LaneState {
    cur: usize,
    issued: bool,
    recv_done: bool,
    send_done: bool,
    reduce_done: bool,
    finished: bool,
}

impl LaneState {
    fn step_done(&self) -> bool {
        self.recv_done && self.send_done && self.reduce_done
    }
}

/// One rank's collective executor; embed in a chare and forward the
/// dedicated entry methods to [`CollMember::on_event`].
pub struct CollMember {
    /// This member's rank in the collective.
    pub rank: usize,
    plan: MemberPlan,
    into_out: bool,
    data: BufferId,
    data_off: usize,
    out: Option<BufferId>,
    out_off: usize,
    scratch: Option<BufferId>,
    scratch_off: Vec<usize>,
    channels: BTreeMap<(usize, usize), ChannelEnd>,
    stream: StreamId,
    entries: CollEntries,
    tag: u64,
    lanes: Vec<LaneState>,
    lanes_left: usize,
    copies_left: usize,
    running: bool,
    /// Counters, cumulative across rounds.
    pub stats: MemberStats,
}

impl CollMember {
    /// Create a member executing `plan` for `rank`.
    ///
    /// `data`/`out` are the send-source and (for personalized
    /// exchanges) receive-destination buffers; `*_off` lets several
    /// members share one buffer at different base offsets (gradient
    /// buckets). Scratch for reductions is allocated here, one disjoint
    /// region per lane. `tag` must have its low 16 bits clear; it is
    /// OR-ed with the lane index into every callback refnum.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        plan: MemberPlan,
        into_out: bool,
        data: BufferId,
        data_off: usize,
        out: Option<BufferId>,
        out_off: usize,
        stream: StreamId,
        entries: CollEntries,
        tag: u64,
        device: &mut Device,
        real: bool,
    ) -> CollMember {
        assert_eq!(tag & LANE_MASK, 0, "tag low bits carry the lane");
        assert!(plan.lanes.len() < LOCAL_LANE as usize, "too many lanes");
        // Scratch: per lane, the largest reduce-landing chunk.
        let needs: Vec<usize> = plan
            .lanes
            .iter()
            .map(|l| {
                l.steps
                    .iter()
                    .filter(|s| s.reduce)
                    .filter_map(|s| s.recv.map(|x| x.len))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let total: usize = needs.iter().sum();
        let mut off = 0;
        let scratch_off = needs
            .iter()
            .map(|n| {
                let here = off;
                off += n;
                here
            })
            .collect();
        let scratch = (total > 0).then(|| device.mem.alloc(gaat_gpu::Space::Device, total, real));
        let nlanes = plan.lanes.len();
        CollMember {
            rank,
            plan,
            into_out,
            data,
            data_off,
            out,
            out_off,
            scratch,
            scratch_off,
            channels: BTreeMap::new(),
            stream,
            entries,
            tag,
            lanes: vec![LaneState::default(); nlanes],
            lanes_left: 0,
            copies_left: 0,
            running: false,
            stats: MemberStats::default(),
        }
    }

    /// Install the channel used for `(lane, peer)` traffic.
    pub fn install_channel(&mut self, lane: usize, peer: usize, end: ChannelEnd) {
        let prev = self.channels.insert((lane, peer), end);
        assert!(
            prev.is_none(),
            "duplicate channel (lane {lane}, peer {peer})"
        );
    }

    /// Whether a collective round is in flight.
    pub fn running(&self) -> bool {
        self.running
    }

    /// The data (send-source / in-place result) buffer.
    pub fn data_buffer(&self) -> BufferId {
        self.data
    }

    /// The output buffer of a personalized exchange, if any.
    pub fn out_buffer(&self) -> Option<BufferId> {
        self.out
    }

    /// Start one collective round. Returns `true` when the round
    /// completed synchronously (single rank, empty payload).
    pub fn begin(&mut self, ctx: &mut Ctx<'_>) -> bool {
        assert!(!self.running, "collective round already in flight");
        self.running = true;
        self.lanes_left = self.lanes.len();
        for st in &mut self.lanes {
            *st = LaneState::default();
        }
        self.start_local_copies(ctx);
        for lane in 0..self.lanes.len() {
            self.pump(ctx, lane);
        }
        self.check_complete()
    }

    /// Local copies (alltoall self-block) run once per round on the
    /// member's stream, completion batched behind one HAPI callback.
    fn start_local_copies(&mut self, ctx: &mut Ctx<'_>) {
        self.copies_left = 0;
        let copies: Vec<_> = self
            .plan
            .local
            .iter()
            .copied()
            .filter(|c| c.len > 0)
            .collect();
        if copies.is_empty() {
            return;
        }
        let t = ctx.machine.cfg.gpu.clone();
        let src_buf = self.data;
        let dst_buf = self.out.expect("local copies target the out buffer");
        let (doff, ooff) = (self.data_off, self.out_off);
        for c in copies {
            let work = t.membound_work(c.len as u64 * 16);
            let spec = KernelSpec::with_func("coll_local", work, move |m| {
                local_copy(m, src_buf, doff + c.src, dst_buf, ooff + c.dst, c.len);
            });
            ctx.launch(self.stream, Op::kernel(spec));
        }
        let me = ctx.me();
        ctx.hapi(
            self.stream,
            Callback::to_ref(me, self.entries.reduced, self.tag | LOCAL_LANE),
        );
        self.copies_left = 1;
    }

    /// Drive a lane: issue the current step if needed, and keep
    /// advancing through virtually-complete steps (zero-length
    /// transfers on both sides).
    fn pump(&mut self, ctx: &mut Ctx<'_>, lane: usize) {
        loop {
            let nsteps = self.plan.lanes[lane].steps.len();
            let st = &mut self.lanes[lane];
            if st.cur >= nsteps {
                if !st.finished {
                    st.finished = true;
                    self.lanes_left -= 1;
                }
                return;
            }
            if st.issued {
                if !st.step_done() {
                    return;
                }
                st.cur += 1;
                st.issued = false;
                self.stats.steps += 1;
                continue;
            }
            self.issue(ctx, lane);
            if !self.lanes[lane].step_done() {
                return;
            }
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, lane: usize) {
        let step: Step = self.plan.lanes[lane].steps[self.lanes[lane].cur];
        let do_recv = step.recv.is_some_and(|x| x.len > 0);
        let do_send = step.send.is_some_and(|x| x.len > 0);
        {
            let st = &mut self.lanes[lane];
            st.issued = true;
            st.recv_done = !do_recv;
            st.reduce_done = !(do_recv && step.reduce);
            st.send_done = !do_send;
        }
        let me = ctx.me();
        let dev = ctx.device();
        if do_recv {
            let x = step.recv.expect("checked");
            let range = if step.reduce {
                let s = self.scratch.expect("reduce steps have scratch");
                BufRange::new(s, self.scratch_off[lane], x.len)
            } else if self.into_out {
                let o = self.out.expect("out buffer");
                BufRange::new(o, self.out_off + x.offset, x.len)
            } else {
                BufRange::new(self.data, self.data_off + x.offset, x.len)
            };
            let loc = MemLoc { device: dev, range };
            let cb = Callback::to_ref(me, self.entries.recv, self.tag | lane as u64);
            let mut ch = self
                .channels
                .remove(&(lane, x.peer))
                .unwrap_or_else(|| panic!("channel (lane {lane}, peer {}) wired", x.peer));
            ch.recv(ctx, loc, cb);
            self.channels.insert((lane, x.peer), ch);
        }
        if do_send {
            let x = step.send.expect("checked");
            let range = BufRange::new(self.data, self.data_off + x.offset, x.len);
            let loc = MemLoc { device: dev, range };
            let cb = Callback::to_ref(me, self.entries.sent, self.tag | lane as u64);
            let mut ch = self
                .channels
                .remove(&(lane, x.peer))
                .unwrap_or_else(|| panic!("channel (lane {lane}, peer {}) wired", x.peer));
            ch.send(ctx, loc, cb);
            self.channels.insert((lane, x.peer), ch);
            self.stats.chunks += 1;
            self.stats.bytes += x.len as u64 * 8;
        }
    }

    /// Forward a dedicated entry method's firing. Returns `true` when
    /// the whole collective round just completed.
    pub fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: MemberEvent, refnum: u64) -> bool {
        assert!(self.running, "event outside a collective round");
        let lane = (refnum & LANE_MASK) as usize;
        match ev {
            MemberEvent::Reduced if lane == LOCAL_LANE as usize => {
                self.copies_left -= 1;
            }
            MemberEvent::Recv => {
                let st = self.lanes[lane];
                let step: Step = self.plan.lanes[lane].steps[st.cur];
                if step.reduce {
                    let x = step.recv.expect("reduce implies recv");
                    let t = ctx.machine.cfg.gpu.clone();
                    let s = self.scratch.expect("scratch");
                    let (soff, dbuf, doff) =
                        (self.scratch_off[lane], self.data, self.data_off + x.offset);
                    // 2 reads + 1 write per element.
                    let work = t.membound_work(x.len as u64 * 24);
                    let len = x.len;
                    let spec = KernelSpec::with_func("coll_reduce", work, move |m| {
                        reduce_add(m, s, soff, dbuf, doff, len);
                    });
                    ctx.launch(self.stream, Op::kernel(spec));
                    let me = ctx.me();
                    ctx.hapi(
                        self.stream,
                        Callback::to_ref(me, self.entries.reduced, self.tag | lane as u64),
                    );
                    self.stats.reduced_elems += x.len as u64;
                }
                self.lanes[lane].recv_done = true;
                self.pump(ctx, lane);
            }
            MemberEvent::Sent => {
                self.lanes[lane].send_done = true;
                self.pump(ctx, lane);
            }
            MemberEvent::Reduced => {
                self.lanes[lane].reduce_done = true;
                self.pump(ctx, lane);
            }
        }
        self.check_complete()
    }

    fn check_complete(&mut self) -> bool {
        if self.running && self.lanes_left == 0 && self.copies_left == 0 {
            self.running = false;
            self.stats.rounds += 1;
            true
        } else {
            false
        }
    }
}

/// Functional reduction kernel body: `dst[doff..] += src[soff..]`.
/// Phantom-safe: does nothing when either buffer is phantom.
pub fn reduce_add(
    m: &mut MemoryPool,
    src: BufferId,
    soff: usize,
    dst: BufferId,
    doff: usize,
    len: usize,
) {
    let Some(vals) = m.read(BufRange::new(src, soff, len)) else {
        return;
    };
    let Some(d) = m.get_mut(dst).as_mut_slice() else {
        return;
    };
    for (i, v) in vals.iter().enumerate() {
        d[doff + i] += v;
    }
}

/// Functional local-copy kernel body. Phantom-safe.
pub fn local_copy(
    m: &mut MemoryPool,
    src: BufferId,
    soff: usize,
    dst: BufferId,
    doff: usize,
    len: usize,
) {
    if let Some(vals) = m.read(BufRange::new(src, soff, len)) {
        m.write(BufRange::new(dst, doff, len), &vals);
    }
}

/// The distinct `(lane, low rank, high rank)` channel edges a plan
/// needs, in deterministic order.
pub fn plan_edges(plan: &CollPlan) -> Vec<(usize, usize, usize)> {
    let mut set = BTreeSet::new();
    for (r, m) in plan.members.iter().enumerate() {
        for (l, lane) in m.lanes.iter().enumerate() {
            for st in &lane.steps {
                for x in [st.send, st.recv].into_iter().flatten() {
                    if x.len > 0 {
                        set.insert((l, r.min(x.peer), r.max(x.peer)));
                    }
                }
            }
        }
    }
    set.into_iter().collect()
}

/// Create and install every channel a plan needs. `ids[r]` is the chare
/// hosting rank `r`; `get` digs the right [`CollMember`] out of a
/// chare's `Any` form (apps embedding several members select by plan).
pub fn wire_members<F>(machine: &mut Machine, ids: &[ChareId], plan: &CollPlan, mut get: F)
where
    F: FnMut(&mut dyn std::any::Any) -> &mut CollMember,
{
    assert_eq!(ids.len(), plan.ranks);
    for (lane, a, b) in plan_edges(plan) {
        let (ea, eb) = create_channel(machine, ids[a], ids[b]);
        get(machine.chare_for_setup(ids[a])).install_channel(lane, b, ea);
        get(machine.chare_for_setup(ids[b])).install_channel(lane, a, eb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, Algorithm, CollOp};

    #[test]
    fn ring_edges_are_neighbours_only() {
        let p = plan(CollOp::AllReduce, Algorithm::Ring, 4, 64, 1 << 20);
        let edges = plan_edges(&p);
        assert_eq!(edges, vec![(0, 0, 1), (0, 0, 3), (0, 1, 2), (0, 2, 3)]);
    }

    #[test]
    fn tree_edges_are_parent_child() {
        let p = plan(CollOp::AllReduce, Algorithm::Tree, 5, 64, 1 << 20);
        let edges = plan_edges(&p);
        assert_eq!(edges, vec![(0, 0, 1), (0, 0, 2), (0, 0, 4), (0, 2, 3)]);
    }

    #[test]
    fn alltoall_edges_are_all_pairs() {
        let p = plan(CollOp::AllToAll, Algorithm::Ring, 4, 8, 1 << 20);
        assert_eq!(plan_edges(&p).len(), 6);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = MemberStats {
            bytes: 1,
            chunks: 2,
            steps: 3,
            reduced_elems: 4,
            rounds: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.bytes, 2);
        assert_eq!(a.rounds, 10);
    }
}
