//! Communication schedules for the collectives.
//!
//! A schedule is pure data: for every rank, a list of *lanes* (independent
//! pipeline channels over disjoint element ranges), each a sequence of
//! [`Step`]s. A step optionally receives a chunk from one peer, optionally
//! reduces it into the local buffer, and optionally sends a chunk to one
//! peer. Steps within a lane execute strictly in order; lanes progress
//! independently, which is where chunk-level pipelining comes from: lane 1
//! can be on the wire while lane 0's reduction kernel runs.
//!
//! Both endpoints of every transfer derive the same plan from the same
//! global parameters, so chunk sizes always agree and zero-length
//! transfers are skipped symmetrically (they complete virtually, without
//! touching the network).

/// Which collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Every rank ends with the elementwise reduction of all inputs.
    AllReduce,
    /// Rank `r` ends with the reduced segment [`reduce_scatter_owner`]`(r)`.
    ReduceScatter,
    /// Every rank contributes its own segment; all end with the whole.
    AllGather,
    /// Rank 0's buffer is replicated everywhere.
    Broadcast,
    /// Personalized exchange: output block `q` = block sent by rank `q`.
    AllToAll,
}

impl CollOp {
    /// Short label for stats and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            CollOp::AllReduce => "allreduce",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::AllGather => "allgather",
            CollOp::Broadcast => "broadcast",
            CollOp::AllToAll => "alltoall",
        }
    }
}

/// Schedule family. Only allreduce has both; the other collectives use
/// their canonical shape (ring for reduce-scatter/allgather, binomial
/// tree for broadcast, pairwise linear shift for alltoall) regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Ring: `2(P-1)` bandwidth-optimal steps for allreduce.
    Ring,
    /// Binomial tree: `2·ceil(log2 P)` latency-optimal rounds.
    Tree,
}

impl Algorithm {
    /// Short label for stats and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
        }
    }
}

/// Mapping from collective rank to PE. With `ranks == pes` both are
/// bijections; they differ in which *node* hosts which rank, which is
/// what the congestion ablation measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPlacement {
    /// Node-major: consecutive ranks fill a node before the next (the
    /// jacobi3d `Packed` convention). Ring neighbours are mostly
    /// intra-node; skewed all-to-all traffic piles onto few nodes.
    Packed,
    /// Node-interleaved: rank `r` goes to node `r % nodes`. Ring hops all
    /// cross the network; skewed traffic spreads across nodes.
    RoundRobin,
}

impl RankPlacement {
    /// Short label for benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            RankPlacement::Packed => "packed",
            RankPlacement::RoundRobin => "roundrobin",
        }
    }
}

/// PE hosting collective rank `r` out of `ranks`, on a machine of
/// `nodes × pes_per_node` PEs. Requires `ranks <= nodes * pes_per_node`.
pub fn place_rank(
    rank: usize,
    ranks: usize,
    nodes: usize,
    pes_per_node: usize,
    placement: RankPlacement,
) -> usize {
    let pes = nodes * pes_per_node;
    assert!(ranks >= 1 && ranks <= pes, "{ranks} ranks on {pes} PEs");
    match placement {
        // Same contiguous-block map as jacobi3d's chare_to_pe with
        // one chare per PE slot.
        RankPlacement::Packed => rank * pes / ranks,
        RankPlacement::RoundRobin => (rank % nodes) * pes_per_node + rank / nodes,
    }
}

/// One transfer endpoint: `len` elements at `offset` (data-buffer
/// coordinates for sends, destination-buffer coordinates for receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xfer {
    /// Peer rank.
    pub peer: usize,
    /// Element offset in the relevant buffer.
    pub offset: usize,
    /// Element count. Zero-length transfers complete virtually.
    pub len: usize,
}

/// One step of a lane's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Incoming chunk, if any.
    pub recv: Option<Xfer>,
    /// Whether the incoming chunk reduces (`+=`) into the data buffer
    /// (via a scratch landing area) or lands directly at its offset.
    pub reduce: bool,
    /// Outgoing chunk, if any (always read from the data buffer).
    pub send: Option<Xfer>,
}

/// A device-local copy (alltoall's self-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalCopy {
    /// Source offset in the data buffer.
    pub src: usize,
    /// Destination offset in the output buffer.
    pub dst: usize,
    /// Element count.
    pub len: usize,
}

/// One rank's schedule for one lane.
#[derive(Debug, Clone, Default)]
pub struct LaneSched {
    /// Steps, executed strictly in order.
    pub steps: Vec<Step>,
}

/// One rank's full schedule.
#[derive(Debug, Clone, Default)]
pub struct MemberPlan {
    /// Independent pipeline lanes.
    pub lanes: Vec<LaneSched>,
    /// Device-local copies issued once at the start of the collective.
    pub local: Vec<LocalCopy>,
}

/// A complete collective plan: every rank's schedule plus geometry.
#[derive(Debug, Clone)]
pub struct CollPlan {
    /// The collective.
    pub op: CollOp,
    /// Schedule family used.
    pub algorithm: Algorithm,
    /// Participant count.
    pub ranks: usize,
    /// Data (input) buffer length per rank, in elements.
    pub in_elems: Vec<usize>,
    /// Output buffer length per rank; `0` means the collective is
    /// in-place in the data buffer and no output buffer exists.
    pub out_elems: Vec<usize>,
    /// Per-rank schedules.
    pub members: Vec<MemberPlan>,
}

/// Most lanes a plan will use; bounds per-member channel count.
pub const MAX_LANES: usize = 16;

/// Even split of `total` items into `parts`, remainder spread to the
/// front: returns `(offset, len)` of part `i`.
pub fn even_split(total: usize, parts: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < parts);
    let q = total / parts;
    let r = total % parts;
    (i * q + i.min(r), q + usize::from(i < r))
}

/// Lane count for ring schedules: one wire transfer is a segment of a
/// lane (≈ `count / (lanes · ranks)` elements), so this picks the lane
/// count that brings segments down to `chunk` elements, capped.
pub fn ring_lanes(count: usize, ranks: usize, chunk: usize) -> usize {
    assert!(chunk >= 1, "chunk must be positive");
    count.div_ceil(ranks.max(1) * chunk).clamp(1, MAX_LANES)
}

/// Lane count for tree and pairwise schedules: one wire transfer is a
/// whole lane slice of a block of `block` elements.
pub fn tree_lanes(block: usize, chunk: usize) -> usize {
    assert!(chunk >= 1, "chunk must be positive");
    block.div_ceil(chunk).clamp(1, MAX_LANES)
}

/// The segment rank `r` owns after a ring reduce-scatter.
pub fn reduce_scatter_owner(rank: usize, ranks: usize) -> usize {
    (rank + 1) % ranks
}

fn xfer(peer: usize, range: (usize, usize)) -> Option<Xfer> {
    Some(Xfer {
        peer,
        offset: range.0,
        len: range.1,
    })
}

/// Segment `j` of lane `l` of a ring schedule: the lane's even-split
/// slice of `[0, count)`, itself even-split into `ranks` segments.
fn ring_seg(count: usize, ranks: usize, lanes: usize, l: usize, j: usize) -> (usize, usize) {
    let (lo, llen) = even_split(count, lanes, l);
    let (o, len) = even_split(llen, ranks, j);
    (lo + o, len)
}

/// Ring reduce-scatter steps for rank `r` (the first half of ring
/// allreduce). After `P-1` steps rank `r` holds the fully reduced
/// segment `(r+1) % P`, accumulated in ring order starting at its
/// origin rank (see `reference::allreduce`).
fn ring_rs_steps(count: usize, ranks: usize, lanes: usize, l: usize, r: usize) -> Vec<Step> {
    let p = ranks;
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    (0..p - 1)
        .map(|s| {
            let sj = (r + p - s) % p;
            let rj = (r + 2 * p - s - 1) % p;
            Step {
                recv: xfer(prev, ring_seg(count, p, lanes, l, rj)),
                reduce: true,
                send: xfer(next, ring_seg(count, p, lanes, l, sj)),
            }
        })
        .collect()
}

/// Ring allgather steps for rank `r`, parameterized by the segment each
/// rank starts from (`start(r)`): plain allgather starts from segment
/// `r`; the allgather phase of allreduce starts from `(r+1) % P`.
fn ring_ag_steps(
    count: usize,
    ranks: usize,
    lanes: usize,
    l: usize,
    r: usize,
    start: impl Fn(usize) -> usize,
) -> Vec<Step> {
    let p = ranks;
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    let my = start(r);
    let pv = start(prev);
    (0..p - 1)
        .map(|s| {
            let sj = (my + p - s) % p;
            let rj = (pv + p - s) % p;
            Step {
                recv: xfer(prev, ring_seg(count, p, lanes, l, rj)),
                reduce: false,
                send: xfer(next, ring_seg(count, p, lanes, l, sj)),
            }
        })
        .collect()
}

/// Number of binomial-tree levels covering `ranks`.
fn tree_levels(ranks: usize) -> usize {
    let mut d = 0;
    while (1usize << d) < ranks {
        d += 1;
    }
    d
}

/// Binomial-tree reduce steps toward root 0 over one lane range.
/// Returns the steps and the level at which `r` sent to its parent
/// (`None` for the root).
fn tree_reduce_steps(r: usize, ranks: usize, range: (usize, usize)) -> (Vec<Step>, Option<usize>) {
    let mut steps = Vec::new();
    let mut d = 0;
    while (1usize << d) < ranks {
        let mask = (1usize << (d + 1)) - 1;
        if r & mask == 0 {
            let child = r + (1 << d);
            if child < ranks {
                steps.push(Step {
                    recv: xfer(child, range),
                    reduce: true,
                    send: None,
                });
            }
        } else {
            // r's low bit below d+1 is exactly 1<<d: send and retire.
            debug_assert_eq!(r & mask, 1 << d);
            steps.push(Step {
                recv: None,
                reduce: false,
                send: xfer(r - (1 << d), range),
            });
            return (steps, Some(d));
        }
        d += 1;
    }
    (steps, None)
}

/// Binomial-tree broadcast steps from root 0 over one lane range.
/// `limit` is the level below which `r` has children (its reduce-phase
/// send level, or the full level count for the root).
fn tree_bcast_steps(r: usize, ranks: usize, range: (usize, usize)) -> Vec<Step> {
    let mut steps = Vec::new();
    let limit = if r == 0 {
        tree_levels(ranks)
    } else {
        let d = r.trailing_zeros() as usize;
        steps.push(Step {
            recv: xfer(r - (1 << d), range),
            reduce: false,
            send: None,
        });
        d
    };
    for d in (0..limit).rev() {
        let child = r + (1 << d);
        if child < ranks {
            steps.push(Step {
                recv: None,
                reduce: false,
                send: xfer(child, range),
            });
        }
    }
    steps
}

/// Build the plan for a uniform collective.
///
/// `count` semantics: elements per rank for allreduce, reduce-scatter
/// (input size) and broadcast; *total* gathered elements for allgather
/// (rank `r` contributes segment `r`); elements **per destination
/// block** for alltoall (each rank sends `count` to every rank,
/// including itself via a device-local copy).
pub fn plan(
    op: CollOp,
    algorithm: Algorithm,
    ranks: usize,
    count: usize,
    chunk: usize,
) -> CollPlan {
    assert!(ranks >= 1, "at least one rank");
    match op {
        CollOp::AllReduce => match algorithm {
            Algorithm::Ring => ring_plan(op, ranks, count, chunk, true, true),
            Algorithm::Tree => tree_allreduce_plan(ranks, count, chunk),
        },
        CollOp::ReduceScatter => ring_plan(op, ranks, count, chunk, true, false),
        CollOp::AllGather => ring_plan(op, ranks, count, chunk, false, true),
        CollOp::Broadcast => broadcast_plan(ranks, count, chunk),
        CollOp::AllToAll => {
            let counts = vec![vec![count; ranks]; ranks];
            let mut p = alltoallv_plan(&counts, chunk);
            p.op = CollOp::AllToAll;
            p
        }
    }
}

fn ring_plan(op: CollOp, ranks: usize, count: usize, chunk: usize, rs: bool, ag: bool) -> CollPlan {
    let lanes = ring_lanes(count, ranks, chunk);
    let members = (0..ranks)
        .map(|r| MemberPlan {
            lanes: (0..lanes)
                .map(|l| {
                    let mut steps = Vec::new();
                    if ranks > 1 {
                        if rs {
                            steps.extend(ring_rs_steps(count, ranks, lanes, l, r));
                        }
                        if ag {
                            // Plain allgather starts from segment r; the
                            // allgather phase of allreduce starts from the
                            // segment the reduce-scatter phase left behind.
                            let off = usize::from(rs);
                            steps.extend(ring_ag_steps(count, ranks, lanes, l, r, move |q| {
                                (q + off) % ranks
                            }));
                        }
                    }
                    LaneSched { steps }
                })
                .collect(),
            local: Vec::new(),
        })
        .collect();
    CollPlan {
        op,
        algorithm: Algorithm::Ring,
        ranks,
        in_elems: vec![count; ranks],
        out_elems: vec![0; ranks],
        members,
    }
}

fn tree_allreduce_plan(ranks: usize, count: usize, chunk: usize) -> CollPlan {
    let lanes = tree_lanes(count, chunk);
    let members = (0..ranks)
        .map(|r| MemberPlan {
            lanes: (0..lanes)
                .map(|l| {
                    let range = even_split(count, lanes, l);
                    let (mut steps, _) = tree_reduce_steps(r, ranks, range);
                    steps.extend(tree_bcast_steps(r, ranks, range));
                    LaneSched { steps }
                })
                .collect(),
            local: Vec::new(),
        })
        .collect();
    CollPlan {
        op: CollOp::AllReduce,
        algorithm: Algorithm::Tree,
        ranks,
        in_elems: vec![count; ranks],
        out_elems: vec![0; ranks],
        members,
    }
}

fn broadcast_plan(ranks: usize, count: usize, chunk: usize) -> CollPlan {
    let lanes = tree_lanes(count, chunk);
    let members = (0..ranks)
        .map(|r| MemberPlan {
            lanes: (0..lanes)
                .map(|l| LaneSched {
                    steps: tree_bcast_steps(r, ranks, even_split(count, lanes, l)),
                })
                .collect(),
            local: Vec::new(),
        })
        .collect();
    CollPlan {
        op: CollOp::Broadcast,
        algorithm: Algorithm::Tree,
        ranks,
        in_elems: vec![count; ranks],
        out_elems: vec![0; ranks],
        members,
    }
}

/// Build the plan for a personalized exchange with per-pair element
/// counts: `counts[r][q]` elements travel from rank `r` to rank `q`.
/// Send layout at rank `r`: blocks ordered by destination; receive
/// layout: blocks ordered by source. The self-block moves with a
/// device-local copy. This is the MoE dispatch/combine primitive.
pub fn alltoallv_plan(counts: &[Vec<usize>], chunk: usize) -> CollPlan {
    let ranks = counts.len();
    assert!(ranks >= 1 && counts.iter().all(|row| row.len() == ranks));
    let max_block = counts
        .iter()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(0);
    let lanes = tree_lanes(max_block.max(1), chunk);
    // Prefix sums: send offset of block q at rank r, recv offset of the
    // block from source q at rank r.
    let soff: Vec<Vec<usize>> = counts
        .iter()
        .map(|row| {
            let mut o = 0;
            row.iter()
                .map(|&c| {
                    let here = o;
                    o += c;
                    here
                })
                .collect()
        })
        .collect();
    let roff: Vec<Vec<usize>> = (0..ranks)
        .map(|r| {
            let mut o = 0;
            (0..ranks)
                .map(|q| {
                    let here = o;
                    o += counts[q][r];
                    here
                })
                .collect()
        })
        .collect();
    let members = (0..ranks)
        .map(|r| {
            let lanes_sched = (0..lanes)
                .map(|l| {
                    let steps = (1..ranks)
                        .map(|s| {
                            let q = (r + s) % ranks;
                            let src = (r + ranks - s) % ranks;
                            let (so, sl) = even_split(counts[r][q], lanes, l);
                            let (ro, rl) = even_split(counts[src][r], lanes, l);
                            Step {
                                recv: xfer(src, (roff[r][src] + ro, rl)),
                                reduce: false,
                                send: xfer(q, (soff[r][q] + so, sl)),
                            }
                        })
                        .collect();
                    LaneSched { steps }
                })
                .collect();
            MemberPlan {
                lanes: lanes_sched,
                local: vec![LocalCopy {
                    src: soff[r][r],
                    dst: roff[r][r],
                    len: counts[r][r],
                }],
            }
        })
        .collect();
    CollPlan {
        op: CollOp::AllToAll,
        algorithm: Algorithm::Ring,
        ranks,
        in_elems: counts.iter().map(|row| row.iter().sum()).collect(),
        out_elems: (0..ranks)
            .map(|r| (0..ranks).map(|q| counts[q][r]).sum())
            .collect(),
        members,
    }
}

/// Whether receives land in a separate output buffer (personalized
/// exchanges) or in the data buffer (everything else).
pub fn uses_out_buffer(op: CollOp) -> bool {
    matches!(op, CollOp::AllToAll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn even_split_covers_everything() {
        for total in [0usize, 1, 5, 17, 64] {
            for parts in [1usize, 2, 3, 7] {
                let mut covered = 0;
                for i in 0..parts {
                    let (o, l) = even_split(total, parts, i);
                    assert_eq!(o, covered);
                    covered += l;
                }
                assert_eq!(covered, total);
            }
        }
    }

    /// Every send in a plan has exactly one matching recv of the same
    /// length on the peer, in the same per-(lane, directed pair)
    /// sequence position — the invariant channel matching relies on.
    fn check_matching(p: &CollPlan) {
        for l in 0..p.members[0].lanes.len() {
            let mut sends: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
            let mut recvs: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
            for (r, m) in p.members.iter().enumerate() {
                for st in &m.lanes[l].steps {
                    if let Some(x) = st.send {
                        if x.len > 0 {
                            sends.entry((r, x.peer)).or_default().push(x.len);
                        }
                    }
                    if let Some(x) = st.recv {
                        if x.len > 0 {
                            recvs.entry((x.peer, r)).or_default().push(x.len);
                        }
                    }
                }
            }
            assert_eq!(sends, recvs, "lane {l} send/recv sequences must match");
        }
    }

    #[test]
    fn plans_have_matched_transfers() {
        for ranks in [1usize, 2, 3, 5, 6, 8, 13] {
            for op in [
                CollOp::AllReduce,
                CollOp::ReduceScatter,
                CollOp::AllGather,
                CollOp::Broadcast,
                CollOp::AllToAll,
            ] {
                for alg in [Algorithm::Ring, Algorithm::Tree] {
                    for count in [1usize, 7, 64] {
                        check_matching(&plan(op, alg, ranks, count, 16));
                    }
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_step_count() {
        let p = plan(CollOp::AllReduce, Algorithm::Ring, 5, 100, 1000);
        for m in &p.members {
            assert_eq!(m.lanes.len(), 1);
            assert_eq!(m.lanes[0].steps.len(), 2 * (5 - 1));
        }
    }

    #[test]
    fn lanes_scale_with_chunk() {
        let p = plan(CollOp::AllReduce, Algorithm::Ring, 4, 4096, 128);
        // segments of 4096/4 = 1024 come down to 128 via 8 lanes
        assert_eq!(p.members[0].lanes.len(), 8);
        let q = plan(CollOp::AllReduce, Algorithm::Ring, 4, 4096, 1 << 20);
        assert_eq!(q.members[0].lanes.len(), 1);
    }

    #[test]
    fn tree_is_log_depth() {
        let p = plan(CollOp::AllReduce, Algorithm::Tree, 8, 64, 1 << 20);
        // root: 3 recvs + 3 sends
        assert_eq!(p.members[0].lanes[0].steps.len(), 6);
        // leaf 7: 1 send + 1 recv
        assert_eq!(p.members[7].lanes[0].steps.len(), 2);
    }

    #[test]
    fn alltoallv_offsets_are_consistent() {
        let counts = vec![vec![2, 0, 5], vec![1, 1, 1], vec![0, 4, 3]];
        let p = alltoallv_plan(&counts, 4);
        assert_eq!(p.in_elems, vec![7, 3, 7]);
        assert_eq!(p.out_elems, vec![3, 5, 9]);
        check_matching(&p);
        // self copies
        assert_eq!(p.members[0].local[0].len, 2);
        assert_eq!(p.members[2].local[0].len, 3);
    }

    #[test]
    fn single_rank_plans_are_trivial() {
        for op in [
            CollOp::AllReduce,
            CollOp::ReduceScatter,
            CollOp::AllGather,
            CollOp::Broadcast,
            CollOp::AllToAll,
        ] {
            let p = plan(op, Algorithm::Ring, 1, 8, 4);
            for m in &p.members {
                assert!(m.lanes.iter().all(|l| l.steps.is_empty()));
            }
        }
    }

    #[test]
    fn placement_maps_are_bijective() {
        for (nodes, ppn) in [(4usize, 6usize), (2, 3), (3, 4)] {
            let pes = nodes * ppn;
            for pl in [RankPlacement::Packed, RankPlacement::RoundRobin] {
                let mut seen = vec![false; pes];
                for r in 0..pes {
                    let pe = place_rank(r, pes, nodes, ppn, pl);
                    assert!(!seen[pe], "{pl:?} collides at pe {pe}");
                    seen[pe] = true;
                }
            }
        }
    }

    #[test]
    fn roundrobin_spreads_consecutive_ranks() {
        // ranks 0..3 land on distinct nodes
        let nodes = 4;
        let ppn = 6;
        let node_of = |r| place_rank(r, 24, nodes, ppn, RankPlacement::RoundRobin) / ppn;
        assert_eq!((0..4).map(node_of).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let packed_node = |r| place_rank(r, 24, nodes, ppn, RankPlacement::Packed) / ppn;
        assert_eq!((0..4).map(packed_node).collect::<Vec<_>>(), vec![0; 4]);
    }
}
