//! Jacobi3D GPU kernels: functional implementations (run on real buffers
//! in validation mode) and execution-time models (charged in all modes).
//!
//! A block of interior size `nx × ny × nz` is stored with one ghost layer:
//! `(nx+2) × (ny+2) × (nz+2)`, x fastest. Pack kernels copy interior
//! boundary planes into per-face halo buffers; unpack kernels copy
//! received halos into ghost planes; the update kernel performs the
//! 7-point Jacobi relaxation `out = (Σ neighbours) / 6`.

use gaat_gpu::{BufferId, GpuTimingModel, MemoryPool};
use gaat_sim::SimDuration;

use crate::geom::{Dims, Face};

/// Linear index into a ghosted block of interior dims `d`.
#[inline]
pub fn idx(d: Dims, x: usize, y: usize, z: usize) -> usize {
    (z * (d.y + 2) + y) * (d.x + 2) + x
}

/// Total elements of a ghosted block.
pub fn ghosted_len(d: Dims) -> usize {
    (d.x + 2) * (d.y + 2) * (d.z + 2)
}

/// Iterate the (x, y, z) interior coordinates of the plane adjacent to
/// `face` (`ghost = false`: the interior boundary plane that gets packed;
/// `ghost = true`: the ghost plane that gets unpacked), invoking `f` with
/// (halo_index, block_index) pairs.
fn face_plane(d: Dims, face: Face, ghost: bool, mut f: impl FnMut(usize, usize)) {
    let (axis, dir) = face.axis_dir();
    // Fixed coordinate along the face axis.
    let fixed = match (dir, ghost) {
        (-1, false) => 1,
        (-1, true) => 0,
        (1, false) => [d.x, d.y, d.z][axis],
        (1, true) => [d.x, d.y, d.z][axis] + 1,
        _ => unreachable!(),
    };
    let mut h = 0;
    match axis {
        0 => {
            for z in 1..=d.z {
                for y in 1..=d.y {
                    f(h, idx(d, fixed, y, z));
                    h += 1;
                }
            }
        }
        1 => {
            for z in 1..=d.z {
                for x in 1..=d.x {
                    f(h, idx(d, x, fixed, z));
                    h += 1;
                }
            }
        }
        _ => {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    f(h, idx(d, x, y, fixed));
                    h += 1;
                }
            }
        }
    }
}

/// Functional pack: interior boundary plane of `u` → `halo`.
pub fn pack(mem: &mut MemoryPool, u: BufferId, halo: BufferId, d: Dims, face: Face) {
    if !(mem.get(u).is_real() && mem.get(halo).is_real()) {
        return;
    }
    let mut plane = Vec::with_capacity(face.area(d));
    {
        let src = mem.get(u).as_slice().expect("real");
        face_plane(d, face, false, |_h, i| plane.push(src[i]));
    }
    mem.get_mut(halo).as_mut_slice().expect("real")[..plane.len()].copy_from_slice(&plane);
}

/// Functional unpack: `halo` → ghost plane of `u`.
pub fn unpack(mem: &mut MemoryPool, u: BufferId, halo: BufferId, d: Dims, face: Face) {
    if !(mem.get(u).is_real() && mem.get(halo).is_real()) {
        return;
    }
    let plane: Vec<f64> = mem.get(halo).as_slice().expect("real")[..face.area(d)].to_vec();
    let dst = mem.get_mut(u).as_mut_slice().expect("real");
    face_plane(d, face, true, |h, i| dst[i] = plane[h]);
}

/// Functional Jacobi update: 7-point relaxation of the interior of `uin`
/// into `uout`. Ghost cells of `uout` are left untouched (they carry the
/// boundary condition or are overwritten by the next unpack).
pub fn update(mem: &mut MemoryPool, uin: BufferId, uout: BufferId, d: Dims) {
    if !(mem.get(uin).is_real() && mem.get(uout).is_real()) {
        return;
    }
    let src = mem.get(uin).as_slice().expect("real").to_vec();
    let dst = mem.get_mut(uout).as_mut_slice().expect("real");
    let sx = 1;
    let sy = d.x + 2;
    let sz = (d.x + 2) * (d.y + 2);
    for z in 1..=d.z {
        for y in 1..=d.y {
            for x in 1..=d.x {
                let i = idx(d, x, y, z);
                dst[i] = (src[i - sx]
                    + src[i + sx]
                    + src[i - sy]
                    + src[i + sy]
                    + src[i - sz]
                    + src[i + sz])
                    / 6.0;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Execution-time models (see DESIGN.md for the calibration rationale).
// ---------------------------------------------------------------------

/// Bytes of HBM traffic per cell for the update kernel (read the cell +
/// cached neighbours + write the output).
const UPDATE_BYTES_PER_CELL: u64 = 24;
/// Bytes per cell for a pack/unpack (one read + one write).
const COPY_BYTES_PER_CELL: u64 = 16;
/// Throughput derating of the max-threads fused (un)pack kernel
/// (paper §III-D1: per-thread looping over six faces; the max-based
/// variant beats the sum-based one but is not free).
const FUSED_COPY_DERATE: f64 = 1.05;

/// Dedicated-device time of the update kernel over `cells` interior
/// cells.
pub fn update_work(t: &GpuTimingModel, cells: usize) -> SimDuration {
    t.membound_work(cells as u64 * UPDATE_BYTES_PER_CELL)
}

/// Dedicated-device time of one pack or unpack of `face_cells` cells.
pub fn copy_work(t: &GpuTimingModel, face_cells: usize) -> SimDuration {
    t.membound_work(face_cells as u64 * COPY_BYTES_PER_CELL)
}

/// Dedicated-device time of a fused pack (or unpack) over several faces.
pub fn fused_copy_work(t: &GpuTimingModel, faces: &[usize]) -> SimDuration {
    let total: usize = faces.iter().sum();
    t.membound_work(total as u64 * COPY_BYTES_PER_CELL)
        .mul_f64(FUSED_COPY_DERATE)
}

/// Dedicated-device time of the fully fused kernel (strategy C): all
/// unpacks + update + all packs in one launch.
pub fn fused_all_work(t: &GpuTimingModel, cells: usize, faces: &[usize]) -> SimDuration {
    let copies: usize = faces.iter().sum::<usize>() * 2; // unpacks + packs
    t.membound_work(cells as u64 * UPDATE_BYTES_PER_CELL + copies as u64 * COPY_BYTES_PER_CELL)
        .mul_f64(FUSED_COPY_DERATE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaat_gpu::Space;

    fn pool_with(d: Dims) -> (MemoryPool, BufferId, BufferId) {
        let mut m = MemoryPool::new();
        let a = m.alloc_real(Space::Device, ghosted_len(d));
        let b = m.alloc_real(Space::Device, ghosted_len(d));
        (m, a, b)
    }

    #[test]
    fn update_averages_neighbors() {
        let d = Dims::cube(1);
        let (mut m, uin, uout) = pool_with(d);
        {
            let s = m.get_mut(uin).as_mut_slice().expect("real");
            // single interior cell at (1,1,1); set its six neighbours
            s[idx(d, 0, 1, 1)] = 6.0;
            s[idx(d, 2, 1, 1)] = 12.0;
            s[idx(d, 1, 0, 1)] = 18.0;
            s[idx(d, 1, 2, 1)] = 24.0;
            s[idx(d, 1, 1, 0)] = 30.0;
            s[idx(d, 1, 1, 2)] = 36.0;
        }
        update(&mut m, uin, uout, d);
        let out = m.get(uout).as_slice().expect("real");
        assert_eq!(out[idx(d, 1, 1, 1)], 21.0);
    }

    #[test]
    fn update_preserves_ghosts_of_output() {
        let d = Dims::cube(2);
        let (mut m, uin, uout) = pool_with(d);
        m.get_mut(uout).as_mut_slice().expect("real")[idx(d, 0, 0, 0)] = 99.0;
        update(&mut m, uin, uout, d);
        assert_eq!(m.get(uout).as_slice().expect("real")[idx(d, 0, 0, 0)], 99.0);
    }

    #[test]
    fn pack_unpack_roundtrip_between_blocks() {
        // Two blocks side by side along x: pack +x of the left block,
        // unpack into the −x ghosts of the right block.
        let d = Dims::new(3, 4, 5);
        let mut m = MemoryPool::new();
        let left = m.alloc_real(Space::Device, ghosted_len(d));
        let right = m.alloc_real(Space::Device, ghosted_len(d));
        let halo = m.alloc_real(Space::Device, Face::Xp.area(d));
        {
            let s = m.get_mut(left).as_mut_slice().expect("real");
            for z in 1..=d.z {
                for y in 1..=d.y {
                    s[idx(d, d.x, y, z)] = (100 * y + z) as f64;
                }
            }
        }
        pack(&mut m, left, halo, d, Face::Xp);
        unpack(&mut m, right, halo, d, Face::Xm);
        let r = m.get(right).as_slice().expect("real");
        for z in 1..=d.z {
            for y in 1..=d.y {
                assert_eq!(r[idx(d, 0, y, z)], (100 * y + z) as f64);
            }
        }
    }

    #[test]
    fn all_faces_pack_correct_cell_count() {
        let d = Dims::new(3, 4, 5);
        for &f in &crate::geom::FACES {
            let mut count = 0;
            face_plane(d, f, false, |_h, _i| count += 1);
            assert_eq!(count, f.area(d), "face {f:?}");
            let mut count_g = 0;
            face_plane(d, f, true, |_h, _i| count_g += 1);
            assert_eq!(count_g, f.area(d));
        }
    }

    #[test]
    fn ghost_and_interior_planes_differ() {
        let d = Dims::cube(3);
        for &f in &crate::geom::FACES {
            let mut interior = vec![];
            let mut ghost = vec![];
            face_plane(d, f, false, |_h, i| interior.push(i));
            face_plane(d, f, true, |_h, i| ghost.push(i));
            assert!(interior.iter().all(|i| !ghost.contains(i)));
        }
    }

    #[test]
    fn phantom_kernels_are_noops() {
        let d = Dims::cube(2);
        let mut m = MemoryPool::new();
        let u = m.alloc_phantom(Space::Device, ghosted_len(d));
        let h = m.alloc_phantom(Space::Device, Face::Xm.area(d));
        // must not panic
        pack(&mut m, u, h, d, Face::Xm);
        unpack(&mut m, u, h, d, Face::Xm);
        update(&mut m, u, u, d);
    }

    #[test]
    fn work_models_scale_sensibly() {
        let t = GpuTimingModel::default();
        let small = update_work(&t, 1_000);
        let big = update_work(&t, 1_000_000);
        assert!(big > small);
        // fused copy of six faces is cheaper than six separate launches'
        // total *device* time only through the dispatch saving — raw work
        // is slightly larger due to the derate.
        let faces = [100_000usize; 6];
        let fused = fused_copy_work(&t, &faces);
        let single: u64 = faces.iter().map(|&f| copy_work(&t, f).as_ns()).sum();
        assert!(fused.as_ns() >= single);
        assert!(fused.as_ns() <= single * 11 / 10);
    }

    #[test]
    fn fused_all_contains_everything() {
        let t = GpuTimingModel::default();
        let faces = [10_000usize; 6];
        let fused = fused_all_work(&t, 1_000_000, &faces);
        assert!(fused >= update_work(&t, 1_000_000));
        assert!(fused.as_ns() >= fused_copy_work(&t, &faces).as_ns() * 2);
    }
}
