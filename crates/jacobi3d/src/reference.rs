//! Sequential reference solver used to validate every parallel variant.
//!
//! Operates on the whole global grid with one ghost layer, using exactly
//! the same update arithmetic (and operand order) as the block kernels,
//! so validation can demand bit-exact equality.

use crate::geom::Dims;
use crate::kernels::idx;

/// Deterministic initial condition: a smooth function of the global cell
/// coordinate. Both the reference and the distributed blocks initialize
/// from this.
pub fn initial_value(gx: usize, gy: usize, gz: usize) -> f64 {
    // Values spread over a few orders of magnitude exercise the stencil
    // without overflowing after many iterations.
    ((gx as f64 * 0.7).sin() + (gy as f64 * 1.3).cos() + (gz as f64 * 0.29).sin()) * 10.0
        + (gx * 3 + gy * 5 + gz * 7) as f64 * 1e-3
}

/// The full-grid sequential solver.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Global interior dims.
    pub dims: Dims,
    u: Vec<f64>,
    tmp: Vec<f64>,
}

impl Reference {
    /// Initialize a `dims` grid with [`initial_value`] in the interior and
    /// zero (Dirichlet) boundary ghosts.
    pub fn new(dims: Dims) -> Self {
        let len = (dims.x + 2) * (dims.y + 2) * (dims.z + 2);
        let mut u = vec![0.0; len];
        for z in 1..=dims.z {
            for y in 1..=dims.y {
                for x in 1..=dims.x {
                    u[idx(dims, x, y, z)] = initial_value(x - 1, y - 1, z - 1);
                }
            }
        }
        Reference {
            dims,
            tmp: u.clone(),
            u,
        }
    }

    /// Perform `iters` Jacobi sweeps. Parallelized over z-slabs on a
    /// `std::thread::scope` worker pool (one contiguous band of slabs per
    /// worker); each output cell is written exactly once from the
    /// read-only input buffer, so the result is bit-identical to the
    /// sequential sweep.
    pub fn run(&mut self, iters: usize) {
        let d = self.dims;
        let sx = 1usize;
        let sy = d.x + 2;
        let sz = (d.x + 2) * (d.y + 2);
        let workers = std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
            .min(d.z)
            .max(1);
        for _ in 0..iters {
            let u = &self.u;
            // Hand each worker a contiguous band of z-slabs. Ghost slabs
            // (z = 0 and z = d.z + 1) are never written.
            std::thread::scope(|scope| {
                let mut rest: &mut [f64] = &mut self.tmp[sz..(d.z + 1) * sz];
                let per = d.z / workers;
                let extra = d.z % workers;
                let mut z0 = 1usize;
                for w in 0..workers {
                    let slabs = per + usize::from(w < extra);
                    if slabs == 0 {
                        continue;
                    }
                    let (band, tail) = rest.split_at_mut(slabs * sz);
                    rest = tail;
                    let z_lo = z0;
                    z0 += slabs;
                    scope.spawn(move || {
                        for (k, slab) in band.chunks_mut(sz).enumerate() {
                            let z = z_lo + k;
                            for y in 1..=d.y {
                                for x in 1..=d.x {
                                    let i = idx(d, x, y, z);
                                    let local = (y * (d.x + 2)) + x;
                                    slab[local] = (u[i - sx]
                                        + u[i + sx]
                                        + u[i - sy]
                                        + u[i + sy]
                                        + u[i - sz]
                                        + u[i + sz])
                                        / 6.0;
                                }
                            }
                        }
                    });
                }
            });
            std::mem::swap(&mut self.u, &mut self.tmp);
        }
    }

    /// Value at a global interior coordinate (0-based, without ghosts).
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.u[idx(self.dims, x + 1, y + 1, z + 1)]
    }

    /// Sum of squares over the interior (a cheap fingerprint).
    pub fn norm2(&self) -> f64 {
        let d = self.dims;
        let mut acc = 0.0;
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let v = self.u[idx(d, x, y, z)];
                    acc += v * v;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_interior_relaxes_toward_boundary() {
        // With zero boundaries, the interior must decay toward zero.
        let mut r = Reference::new(Dims::cube(4));
        let before = r.norm2();
        r.run(10);
        let after = r.norm2();
        assert!(after < before, "norm should decay: {before} -> {after}");
    }

    #[test]
    fn zero_iterations_is_identity() {
        let mut r = Reference::new(Dims::cube(3));
        let want = r.at(1, 1, 1);
        r.run(0);
        assert_eq!(r.at(1, 1, 1), want);
    }

    #[test]
    fn single_cell_grid() {
        let mut r = Reference::new(Dims::cube(1));
        r.run(1);
        // All six neighbours are zero boundary ghosts.
        assert_eq!(r.at(0, 0, 0), 0.0);
    }

    #[test]
    fn update_matches_block_kernel_on_whole_grid() {
        // The reference and the block `update` kernel must agree exactly
        // when the block covers the whole grid.
        use gaat_gpu::{MemoryPool, Space};
        let d = Dims::new(4, 3, 5);
        let mut r = Reference::new(d);

        let mut m = MemoryPool::new();
        let len = crate::kernels::ghosted_len(d);
        let uin = m.alloc_real(Space::Device, len);
        let uout = m.alloc_real(Space::Device, len);
        {
            let s = m.get_mut(uin).as_mut_slice().expect("real");
            for z in 1..=d.z {
                for y in 1..=d.y {
                    for x in 1..=d.x {
                        s[idx(d, x, y, z)] = initial_value(x - 1, y - 1, z - 1);
                    }
                }
            }
        }
        crate::kernels::update(&mut m, uin, uout, d);
        r.run(1);
        let s = m.get(uout).as_slice().expect("real");
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    assert_eq!(
                        s[idx(d, x, y, z)],
                        r.at(x - 1, y - 1, z - 1),
                        "mismatch at ({x},{y},{z})"
                    );
                }
            }
        }
    }
}
