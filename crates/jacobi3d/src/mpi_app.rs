//! The MPI version of Jacobi3D (paper Fig. 1): one rank per PE/GPU,
//! nonblocking halo exchange with `Waitall`, and blocking
//! stream-synchronize between GPU phases — the classic structure whose
//! lost overlap motivates the task-runtime approach.
//!
//! Variants: host staging (MPI-H) vs CUDA-aware (MPI-D), and the optional
//! *manual overlap* pattern from Fig. 1b (interior update overlapped with
//! the halo exchange) as an extension.

use std::sync::Arc;

use gaat_mpi::Mpi;
use gaat_rt::{
    BufRange, BufferId, Callback, Chare, ChareId, Ctx, EntryId, Envelope, KernelSpec, MemLoc, Op,
    Simulation, Space, StreamId,
};
use gaat_sim::SimTime;

use crate::app::{CommMode, JacobiConfig, RunResult};
use crate::geom::{Decomp, Dims, Face, FACES};
use crate::kernels;
use crate::reference::initial_value;

/// Begin execution.
pub const E_START: EntryId = EntryId(0);
/// Request-completion callbacks (routed to [`Mpi::on_request_done`]).
pub const E_REQ: EntryId = EntryId(1);
/// Pack kernels done (post stream-sync).
pub const E_PACKED: EntryId = EntryId(2);
/// D2H staging done (host-staging mode).
pub const E_STAGED: EntryId = EntryId(3);
/// Waitall finished.
pub const E_COMM_DONE: EntryId = EntryId(4);
/// Update done; iteration boundary.
pub const E_ITER_DONE: EntryId = EntryId(5);

/// Immutable run-wide parameters.
#[derive(Debug)]
pub struct MpiShared {
    /// The experiment.
    pub cfg: JacobiConfig,
    /// One block per rank.
    pub decomp: Decomp,
}

/// One MPI rank owning one block.
pub struct JacobiRank {
    mpi: Mpi,
    sh: Arc<MpiShared>,
    dims: Dims,
    faces: Vec<Face>,
    /// Neighbour rank across each face.
    neighbors: [Option<usize>; 6],
    u: [BufferId; 2],
    cur: usize,
    halo_send_d: [Option<BufferId>; 6],
    halo_recv_d: [Option<BufferId>; 6],
    halo_send_h: [Option<BufferId>; 6],
    halo_recv_h: [Option<BufferId>; 6],
    stream: StreamId,
    iter: usize,
    /// Warm-up completion time.
    pub warm_at: Option<SimTime>,
    /// Final completion time.
    pub done_at: Option<SimTime>,
}

impl JacobiRank {
    fn face_cells(&self, f: Face) -> usize {
        f.area(self.dims)
    }

    fn interior_cells(&self) -> usize {
        self.dims.x.saturating_sub(2)
            * self.dims.y.saturating_sub(2)
            * self.dims.z.saturating_sub(2)
    }

    /// Blocking wait on the GPU stream — except under AMPI-style
    /// virtualization, where the user-level thread yields (asynchronous
    /// detection) so co-located ranks keep the PE busy.
    fn gpu_wait(&self, ctx: &mut Ctx<'_>, resume: EntryId) {
        let me = ctx.me();
        if self.sh.cfg.virtual_ranks > 1 {
            ctx.hapi(self.stream, Callback::to(me, resume));
        } else {
            ctx.stream_sync(self.stream, Callback::to(me, resume));
        }
    }

    /// Phase 1: pack all faces, then synchronize.
    fn step_pack(&mut self, ctx: &mut Ctx<'_>) {
        for &f in &self.faces.clone() {
            let t = &ctx.machine.cfg.gpu;
            let work = kernels::copy_work(t, self.face_cells(f));
            let (u, halo, d) = (
                self.u[self.cur],
                self.halo_send_d[f.index()].expect("active"),
                self.dims,
            );
            let spec =
                KernelSpec::with_func("pack", work, move |m| kernels::pack(m, u, halo, d, f));
            ctx.launch(self.stream, Op::kernel(spec));
        }
        self.gpu_wait(ctx, E_PACKED);
    }

    /// Phase 2 (host staging only): D2H all faces, then synchronize.
    fn step_stage_out(&mut self, ctx: &mut Ctx<'_>) {
        for &f in &self.faces.clone() {
            let i = f.index();
            let cells = self.face_cells(f);
            ctx.launch(
                self.stream,
                Op::d2h(
                    BufRange::whole(self.halo_send_d[i].expect("active"), cells),
                    BufRange::whole(self.halo_send_h[i].expect("active"), cells),
                ),
            );
        }
        self.gpu_wait(ctx, E_STAGED);
    }

    /// Phase 3: post all sends and receives, optionally overlap the
    /// interior update, then wait for everything.
    fn step_comm(&mut self, ctx: &mut Ctx<'_>) {
        let dev = ctx.device();
        let host = self.sh.cfg.comm == CommMode::HostStaging;
        for &f in &self.faces.clone() {
            let i = f.index();
            let cells = self.face_cells(f);
            let nb = self.neighbors[i].expect("active face");
            let (sbuf, rbuf) = if host {
                (
                    self.halo_send_h[i].expect("active"),
                    self.halo_recv_h[i].expect("active"),
                )
            } else {
                (
                    self.halo_send_d[i].expect("active"),
                    self.halo_recv_d[i].expect("active"),
                )
            };
            let sloc = MemLoc {
                device: dev,
                range: BufRange::whole(sbuf, cells),
            };
            let rloc = MemLoc {
                device: dev,
                range: BufRange::whole(rbuf, cells),
            };
            // Tag = the *sender's* face index, so my receive across face f
            // matches the neighbour's send from f.opposite().
            self.mpi.irecv(ctx, nb, f.opposite().index() as u64, rloc);
            self.mpi.isend(ctx, nb, f.index() as u64, sloc);
        }
        if self.sh.cfg.overlap {
            // Manual overlap (Fig. 1b): the interior does not depend on
            // halo data.
            let t = &ctx.machine.cfg.gpu;
            let work = kernels::update_work(t, self.interior_cells());
            ctx.launch(
                self.stream,
                Op::kernel(KernelSpec::phantom("update_interior", work)),
            );
        }
        self.mpi.wait_all(ctx, E_COMM_DONE, self.iter as u64);
    }

    /// Phase 4: stage in (host mode), unpack, update the block (exterior
    /// only under manual overlap), then synchronize into the iteration
    /// boundary.
    fn step_update(&mut self, ctx: &mut Ctx<'_>) {
        let host = self.sh.cfg.comm == CommMode::HostStaging;
        for &f in &self.faces.clone() {
            let i = f.index();
            let cells = self.face_cells(f);
            if host {
                ctx.launch(
                    self.stream,
                    Op::h2d(
                        BufRange::whole(self.halo_recv_h[i].expect("active"), cells),
                        BufRange::whole(self.halo_recv_d[i].expect("active"), cells),
                    ),
                );
            }
            let t = &ctx.machine.cfg.gpu;
            let work = kernels::copy_work(t, cells);
            let (u, halo, d) = (
                self.u[self.cur],
                self.halo_recv_d[i].expect("active"),
                self.dims,
            );
            let spec =
                KernelSpec::with_func("unpack", work, move |m| kernels::unpack(m, u, halo, d, f));
            ctx.launch(self.stream, Op::kernel(spec));
        }
        // The update kernel; under manual overlap only the exterior
        // remains (the functional effect is always the full sweep — the
        // interior phantom kernel carried no effect).
        let t = &ctx.machine.cfg.gpu;
        let cells = if self.sh.cfg.overlap {
            self.dims.count() - self.interior_cells()
        } else {
            self.dims.count()
        };
        let work = kernels::update_work(t, cells);
        let (uin, uout, d) = (self.u[self.cur], self.u[1 - self.cur], self.dims);
        let name = if self.sh.cfg.overlap {
            "update_exterior"
        } else {
            "update"
        };
        let spec = KernelSpec::with_func(name, work, move |m| kernels::update(m, uin, uout, d));
        ctx.launch(self.stream, Op::kernel(spec));
        self.gpu_wait(ctx, E_ITER_DONE);
    }
}

impl Chare for JacobiRank {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_START => self.step_pack(ctx),
            E_REQ => self.mpi.on_request_done(ctx, env),
            E_PACKED => {
                if self.sh.cfg.comm == CommMode::HostStaging {
                    self.step_stage_out(ctx);
                } else {
                    self.step_comm(ctx);
                }
            }
            E_STAGED => self.step_comm(ctx),
            E_COMM_DONE => self.step_update(ctx),
            E_ITER_DONE => {
                self.cur = 1 - self.cur;
                self.iter += 1;
                if self.iter == self.sh.cfg.warmup {
                    self.warm_at = Some(ctx.start_time());
                }
                if self.iter >= self.sh.cfg.total_iters() {
                    self.done_at = Some(ctx.start_time());
                } else {
                    self.step_pack(ctx);
                }
            }
            other => panic!("unknown entry {other:?}"),
        }
    }
}

/// Build the MPI Jacobi3D simulation: one rank per PE.
pub fn build(cfg: JacobiConfig) -> (Simulation, Vec<ChareId>, Arc<MpiShared>) {
    let sim = Simulation::new(cfg.machine.clone());
    build_in(sim, cfg)
}

/// [`build`] into a caller-provided engine (a recycled
/// [`gaat_rt::WorldSlot`] world), so batched sweeps can reuse engines
/// across MPI-variant runs exactly as they do for the task runtime.
pub fn build_in(
    mut sim: Simulation,
    cfg: JacobiConfig,
) -> (Simulation, Vec<ChareId>, Arc<MpiShared>) {
    cfg.validate();
    assert_eq!(
        cfg.odf, 1,
        "the MPI versions always run one rank per PE (use the task runtime for ODF > 1, \
         or virtual_ranks for AMPI-style virtualization)"
    );
    let pes = cfg.machine.total_pes();
    let nranks = pes * cfg.virtual_ranks;
    let decomp = Decomp::new(cfg.global, nranks);
    let real = cfg.machine.real_buffers;
    let sh = Arc::new(MpiShared {
        cfg: cfg.clone(),
        decomp,
    });

    // Pre-allocate per-rank GPU resources (the factory below cannot touch
    // the machine while `create_ranks` holds it).
    struct Pre {
        dims: Dims,
        faces: Vec<Face>,
        neighbors: [Option<usize>; 6],
        u: [BufferId; 2],
        hs_d: [Option<BufferId>; 6],
        hr_d: [Option<BufferId>; 6],
        hs_h: [Option<BufferId>; 6],
        hr_h: [Option<BufferId>; 6],
        stream: StreamId,
    }
    let mut pre: Vec<Option<Pre>> = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let coord = sh.decomp.coord_of(rank);
        let dims = sh.decomp.block_dims(coord);
        let origin = sh.decomp.block_origin(coord);
        let faces = sh.decomp.active_faces(coord);
        let device = &mut sim.machine.devices[rank / cfg.virtual_ranks];
        let len = kernels::ghosted_len(dims);
        let u0 = device.mem.alloc(Space::Device, len, real);
        let u1 = device.mem.alloc(Space::Device, len, real);
        if real {
            let s = device.mem.get_mut(u0).as_mut_slice().expect("real");
            for z in 1..=dims.z {
                for y in 1..=dims.y {
                    for x in 1..=dims.x {
                        s[kernels::idx(dims, x, y, z)] =
                            initial_value(origin.0 + x - 1, origin.1 + y - 1, origin.2 + z - 1);
                    }
                }
            }
        }
        let mut hs_d = [None; 6];
        let mut hr_d = [None; 6];
        let mut hs_h = [None; 6];
        let mut hr_h = [None; 6];
        let mut neighbors = [None; 6];
        for &f in &faces {
            let cells = f.area(dims);
            let i = f.index();
            hs_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            hr_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            if cfg.comm == CommMode::HostStaging {
                hs_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
                hr_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
            }
            neighbors[i] = Some(
                sh.decomp
                    .index_of(sh.decomp.neighbor(coord, f).expect("active")),
            );
        }
        let stream = device.create_stream(1);
        pre.push(Some(Pre {
            dims,
            faces,
            neighbors,
            u: [u0, u1],
            hs_d,
            hr_d,
            hs_h,
            hr_h,
            stream,
        }));
    }

    for d in &sim.machine.devices {
        d.assert_memory_fits();
    }

    let sh2 = sh.clone();
    let ids = gaat_mpi::create_ranks(
        &mut sim,
        nranks,
        cfg.virtual_ranks,
        E_REQ,
        move |rank, mpi| {
            let p = pre[rank].take().expect("one factory call per rank");
            JacobiRank {
                mpi,
                sh: sh2.clone(),
                dims: p.dims,
                faces: p.faces,
                neighbors: p.neighbors,
                u: p.u,
                cur: 0,
                halo_send_d: p.hs_d,
                halo_recv_d: p.hr_d,
                halo_send_h: p.hs_h,
                halo_recv_h: p.hr_h,
                stream: p.stream,
                iter: 0,
                warm_at: if sh2.cfg.warmup == 0 {
                    Some(SimTime::ZERO)
                } else {
                    None
                },
                done_at: None,
            }
        },
    );
    (sim, ids, sh)
}

/// Run a built MPI simulation and collect the result.
pub fn run(sim: &mut Simulation, ids: &[ChareId], sh: &MpiShared) -> RunResult {
    gaat_mpi::start_all(sim, ids, E_START);
    let outcome = sim.run();
    assert_eq!(outcome, gaat_rt::RunOutcome::Drained, "should quiesce");
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    for &id in ids {
        let r = sim.machine.chare_as::<JacobiRank>(id);
        warm = warm.max(r.warm_at.expect("rank warmed up"));
        done = done.max(r.done_at.expect("rank finished"));
    }
    let checksum = checksum(sim, ids, sh);
    let kernels: u64 = sim.machine.devices.iter().map(|d| d.stats().kernels).sum();
    let pes = sim.machine.pes.len();
    let cpu_utilization = (0..pes)
        .map(|p| sim.machine.pe_utilization(p, done))
        .sum::<f64>()
        / pes as f64;
    RunResult {
        time_per_iter: done.since(warm) / sh.cfg.iters as u64,
        total: done.since(SimTime::ZERO),
        warm_at: warm,
        checksum,
        entries: sim.machine.stats().entries,
        kernels,
        graph_launches: 0,
        cpu_utilization,
        reduced_norm: None,
    }
}

/// Sum of squares of the final field (`None` in phantom mode),
/// reconstructed in global order so it is bit-comparable across variants
/// and decompositions.
pub fn checksum(sim: &Simulation, ids: &[ChareId], sh: &MpiShared) -> Option<f64> {
    if !sh.cfg.machine.real_buffers {
        return None;
    }
    let mut field = vec![0.0f64; sh.cfg.global.count()];
    let g = sh.cfg.global;
    for (rank, &id) in ids.iter().enumerate() {
        let r = sim.machine.chare_as::<JacobiRank>(id);
        let pe = sim.machine.pe_of(id);
        let buf = sim.machine.devices[pe].mem.get(r.u[r.cur]);
        let s = buf.as_slice()?;
        let d = r.dims;
        let o = sh.decomp.block_origin(sh.decomp.coord_of(rank));
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let gi = ((o.2 + z - 1) * g.y + (o.1 + y - 1)) * g.x + (o.0 + x - 1);
                    field[gi] = s[kernels::idx(d, x, y, z)];
                }
            }
        }
    }
    Some(field.iter().map(|v| v * v).sum())
}

/// Bit-exact comparison of every rank's final block against the
/// sequential reference.
pub fn validate_against_reference(sim: &Simulation, ids: &[ChareId], sh: &MpiShared) -> usize {
    let mut reference = crate::reference::Reference::new(sh.cfg.global);
    reference.run(sh.cfg.total_iters());
    let mut compared = 0;
    for (rank, &id) in ids.iter().enumerate() {
        let r = sim.machine.chare_as::<JacobiRank>(id);
        let pe = sim.machine.pe_of(id);
        let buf = sim.machine.devices[pe].mem.get(r.u[r.cur]);
        let s = buf.as_slice().expect("validation needs real buffers");
        let d = r.dims;
        let o = sh.decomp.block_origin(sh.decomp.coord_of(rank));
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let got = s[kernels::idx(d, x, y, z)];
                    let want = reference.at(o.0 + x - 1, o.1 + y - 1, o.2 + z - 1);
                    assert_eq!(got, want, "rank {rank} cell ({x},{y},{z})");
                    compared += 1;
                }
            }
        }
    }
    compared
}

const _: () = {
    // FACES must stay in sync with the 6-slot arrays used above.
    assert!(FACES.len() == 6);
};
