//! The task-runtime (Charm++-style) version of Jacobi3D.
//!
//! Each block of the global grid is a chare. An iteration is driven
//! entirely by completion messages (no blocking anywhere):
//!
//! 1. `E_PACKED` / `E_POST_ITER` — the single host-device sync point per
//!    iteration (HAPI callback after the packing kernels): swap the
//!    in/out pointers, post channel receives (GPU-aware) and sends.
//! 2. Halo arrivals (`E_ARRIVED` from channels, `E_RECV_HALO` as
//!    host-staged runtime messages) enqueue per-face unpack kernels,
//!    unless a fused-unpack strategy or graph execution defers them.
//! 3. When all halos have arrived *and* all sends have completed
//!    (`all_halos`), the update kernel and the next iteration's packs are
//!    enqueued — or a single captured graph is launched — ending with the
//!    next sync point.
//!
//! The `SyncMode::Original` variant reproduces the paper's
//! pre-optimization baseline: an extra host-device sync after the update
//! and a single stream for transfers and (un)packing (Fig. 6).

use std::sync::Arc;

use gaat_gpu::{CudaEventId, GraphBuilder};
use gaat_rt::{
    create_channel, BufRange, BufferId, Callback, ChannelEnd, Chare, ChareId, ChareSnapshot, Ctx,
    DeviceId, EntryId, Envelope, GraphId, KernelSpec, MemLoc, Op, Simulation, Space, StreamId,
    WhenSet,
};
use gaat_sim::SimTime;

use crate::app::{CommMode, Fusion, GraphStrategy, JacobiConfig, RunResult, SyncMode};
use crate::geom::{place_chare, Decomp, Dims, Face, FACES};
use crate::kernels;
use crate::reference::initial_value;

/// Begin execution (injected at t = 0).
pub const E_START: EntryId = EntryId(0);
/// Packing kernels finished (HAPI) — no pointer swap (start / original).
pub const E_PACKED: EntryId = EntryId(1);
/// Update + packs finished (HAPI / graph) — swap and start next exchange.
pub const E_POST_ITER: EntryId = EntryId(2);
/// Update finished (original sync mode's extra sync point).
pub const E_UPDATE_DONE: EntryId = EntryId(3);
/// A channel receive completed (refnum = face index).
pub const E_ARRIVED: EntryId = EntryId(4);
/// A channel send completed (refnum = face index).
pub const E_SEND_DONE: EntryId = EntryId(5);
/// A D2H staging copy completed (host-staging mode; refnum = face index).
pub const E_STAGED: EntryId = EntryId(6);
/// A host-staged halo message arrived (refnum = iteration).
pub const E_RECV_HALO: EntryId = EntryId(7);
/// The final-norm reduction result (delivered to block 0).
pub const E_NORM: EntryId = EntryId(8);
/// Restart after a failure recovery (refnum = the recovery epoch, i.e.
/// the iteration count every block rolled back to).
pub const E_RESUME: EntryId = EntryId(9);

/// Host-staged halo payload.
#[derive(Clone)]
pub struct HaloMsg {
    /// The *receiver's* face this halo belongs to.
    pub face: Face,
    /// Functional payload (None in phantom mode).
    pub data: Option<Vec<f64>>,
}

/// Immutable run-wide parameters shared by all block chares.
#[derive(Debug)]
pub struct Shared {
    /// The experiment.
    pub cfg: JacobiConfig,
    /// Block decomposition (PEs × ODF blocks).
    pub decomp: Decomp,
    /// Reducer id for the final-norm reduction.
    pub norm_reducer: u64,
    /// Chare receiving the reduction result.
    pub root: ChareId,
    /// Participants in the reduction.
    pub nblocks: usize,
}

/// One block of the grid.
#[derive(Clone)]
pub struct BlockChare {
    sh: Arc<Shared>,
    dims: Dims,
    faces: Vec<Face>,
    neighbors: [Option<ChareId>; 6],
    channels: [Option<ChannelEnd>; 6],
    u: [BufferId; 2],
    cur: usize,
    halo_send_d: [Option<BufferId>; 6],
    halo_recv_d: [Option<BufferId>; 6],
    halo_send_h: [Option<BufferId>; 6],
    halo_recv_h: [Option<BufferId>; 6],
    comp: StreamId,
    comm: StreamId,
    d2h: StreamId,
    h2d: StreamId,
    ev_unpacks: CudaEventId,
    ev_update: CudaEventId,
    ev_face: [Option<CudaEventId>; 6],
    graphs: Option<[GraphId; 2]>,
    /// Node-ordered kernel specs per parity (UpdateParams strategy).
    graph_update_specs: Option<[Vec<KernelSpec>; 2]>,
    iter: usize,
    arrived: usize,
    sends_done: usize,
    pending: WhenSet,
    /// Device holding this block's buffers (tracked so a post-recovery
    /// resume can detect migration and re-provision).
    dev: DeviceId,
    /// Snapshot handed over by [`Chare::restore`], applied at `E_RESUME`
    /// (restore has no machine access, so device memory is written then).
    resume: Option<ChareSnapshot>,
    /// Time this block finished its warm-up iterations.
    pub warm_at: Option<SimTime>,
    /// Time this block finished all iterations.
    pub done_at: Option<SimTime>,
    /// Final-norm reduction result (set on the root block only).
    pub norm_result: Option<f64>,
}

impl BlockChare {
    fn total(&self) -> usize {
        self.sh.cfg.total_iters()
    }

    fn defer_unpack(&self) -> bool {
        self.sh.cfg.fusion.defers_unpack() || self.sh.cfg.graphs
    }

    fn face_cells(&self, f: Face) -> usize {
        f.area(self.dims)
    }

    fn active_face_cells(&self) -> Vec<usize> {
        self.faces.iter().map(|&f| self.face_cells(f)).collect()
    }

    // ---- kernel specs --------------------------------------------------

    fn update_spec(&self, ctx: &Ctx<'_>, p: usize) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::update_work(t, self.dims.count());
        let (uin, uout, d) = (self.u[p], self.u[1 - p], self.dims);
        KernelSpec::with_func("update", work, move |m| kernels::update(m, uin, uout, d))
    }

    fn pack_spec(&self, ctx: &Ctx<'_>, p_src: usize, f: Face) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::copy_work(t, self.face_cells(f));
        let (u, halo, d) = (
            self.u[p_src],
            self.halo_send_d[f.index()].expect("active face"),
            self.dims,
        );
        KernelSpec::with_func("pack", work, move |m| kernels::pack(m, u, halo, d, f))
    }

    fn unpack_spec(&self, ctx: &Ctx<'_>, p: usize, f: Face) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::copy_work(t, self.face_cells(f));
        let (u, halo, d) = (
            self.u[p],
            self.halo_recv_d[f.index()].expect("active face"),
            self.dims,
        );
        KernelSpec::with_func("unpack", work, move |m| kernels::unpack(m, u, halo, d, f))
    }

    fn fused_pack_spec(&self, ctx: &Ctx<'_>, p_src: usize) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::fused_copy_work(t, &self.active_face_cells());
        let u = self.u[p_src];
        let d = self.dims;
        let halos: Vec<(Face, BufferId)> = self
            .faces
            .iter()
            .map(|&f| (f, self.halo_send_d[f.index()].expect("active")))
            .collect();
        KernelSpec::with_func("pack_fused", work, move |m| {
            for &(f, h) in &halos {
                kernels::pack(m, u, h, d, f);
            }
        })
    }

    fn fused_unpack_spec(&self, ctx: &Ctx<'_>, p: usize) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::fused_copy_work(t, &self.active_face_cells());
        let u = self.u[p];
        let d = self.dims;
        let halos: Vec<(Face, BufferId)> = self
            .faces
            .iter()
            .map(|&f| (f, self.halo_recv_d[f.index()].expect("active")))
            .collect();
        KernelSpec::with_func("unpack_fused", work, move |m| {
            for &(f, h) in &halos {
                kernels::unpack(m, u, h, d, f);
            }
        })
    }

    fn fused_all_spec(&self, ctx: &Ctx<'_>, p: usize) -> KernelSpec {
        let t = &ctx.machine.cfg.gpu;
        let work = kernels::fused_all_work(t, self.dims.count(), &self.active_face_cells());
        let (uin, uout, d) = (self.u[p], self.u[1 - p], self.dims);
        let recv: Vec<(Face, BufferId)> = self
            .faces
            .iter()
            .map(|&f| (f, self.halo_recv_d[f.index()].expect("active")))
            .collect();
        let send: Vec<(Face, BufferId)> = self
            .faces
            .iter()
            .map(|&f| (f, self.halo_send_d[f.index()].expect("active")))
            .collect();
        KernelSpec::with_func("fused_all", work, move |m| {
            for &(f, h) in &recv {
                kernels::unpack(m, uin, h, d, f);
            }
            kernels::update(m, uin, uout, d);
            for &(f, h) in &send {
                kernels::pack(m, uout, h, d, f);
            }
        })
    }

    // ---- iteration driving ----------------------------------------------

    /// Enqueue this iteration's pack kernels (reading `u[p_src]`) and the
    /// HAPI sync point delivering `done` when they complete.
    fn enqueue_packs(&self, ctx: &mut Ctx<'_>, p_src: usize, done: Callback) {
        match self.sh.cfg.fusion {
            Fusion::None => {
                for &f in &self.faces.clone() {
                    ctx.launch(self.comm, Op::kernel(self.pack_spec(ctx, p_src, f)));
                }
            }
            Fusion::A | Fusion::B | Fusion::C => {
                // C only reaches here for the very first iteration, where
                // there is nothing to fuse the packs *into*.
                ctx.launch(self.comm, Op::kernel(self.fused_pack_spec(ctx, p_src)));
            }
        }
        ctx.hapi(self.comm, done);
    }

    /// Crossed an iteration boundary (counter already incremented):
    /// record timings, maybe checkpoint; false = run complete, stop
    /// issuing work.
    fn on_iteration_boundary(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.iter == self.sh.cfg.warmup {
            self.warm_at = Some(ctx.start_time());
        }
        if self.iter >= self.total() {
            self.done_at = Some(ctx.start_time());
            if self.sh.cfg.compute_norm {
                self.contribute_norm(ctx);
            }
            return false;
        }
        let every = self.sh.cfg.checkpoint_every;
        if every > 0 && self.iter > 0 && self.iter.is_multiple_of(every) {
            let snap = self.snapshot(ctx);
            ctx.store_checkpoint(self.iter as u64, snap);
        }
        true
    }

    /// Serialize the block at an iteration boundary: the iteration count
    /// and the interior of the current solution buffer. Ghost cells are
    /// excluded — the restart re-runs the halo exchange before the next
    /// update reads them.
    fn snapshot(&self, ctx: &mut Ctx<'_>) -> ChareSnapshot {
        let d = self.dims;
        let mut floats = Vec::new();
        if let Some(s) = ctx.machine.devices[self.dev.0]
            .mem
            .get(self.u[self.cur])
            .as_slice()
        {
            floats.reserve(d.count());
            for z in 1..=d.z {
                for y in 1..=d.y {
                    for x in 1..=d.x {
                        floats.push(s[kernels::idx(d, x, y, z)]);
                    }
                }
            }
        }
        ChareSnapshot {
            ints: vec![self.iter as i64],
            floats,
        }
    }

    /// Re-create device-side resources on the PE's device after a
    /// migration forced by failure recovery (the old device's allocations
    /// are stranded — acceptable in the model, where device memory is
    /// only accounted at build time). Channels and graphs are per-device
    /// and not rebuilt: recovery is supported for the host-staging,
    /// non-graph configurations.
    fn reprovision(&mut self, ctx: &mut Ctx<'_>) {
        assert!(
            self.sh.cfg.comm == CommMode::HostStaging && !self.sh.cfg.graphs,
            "post-recovery migration requires host-staging, non-graph config"
        );
        let real = self.sh.cfg.machine.real_buffers;
        let dims = self.dims;
        let dev = ctx.device();
        let device = &mut ctx.machine.devices[dev.0];
        let len = kernels::ghosted_len(dims);
        self.u = [
            device.mem.alloc(Space::Device, len, real),
            device.mem.alloc(Space::Device, len, real),
        ];
        for &f in &self.faces {
            let cells = f.area(dims);
            let i = f.index();
            self.halo_send_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            self.halo_recv_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            self.halo_send_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
            self.halo_recv_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
            self.ev_face[i] = Some(device.create_event());
        }
        let comp = device.create_stream(0);
        let prio = self.sh.cfg.comm_priority;
        let comm = device.create_stream(prio);
        let (d2h, h2d) = match self.sh.cfg.sync {
            SyncMode::Original => (comm, comm),
            SyncMode::Optimized => (device.create_stream(prio), device.create_stream(prio)),
        };
        self.comp = comp;
        self.comm = comm;
        self.d2h = d2h;
        self.h2d = h2d;
        self.ev_unpacks = device.create_event();
        self.ev_update = device.create_event();
        self.dev = dev;
    }

    /// Contribute this block's squared norm to the global reduction (the
    /// convergence-monitoring pattern; exercises the runtime's reduction
    /// path from inside the application).
    fn contribute_norm(&mut self, ctx: &mut Ctx<'_>) {
        // Host-side evaluation of the local norm (a real application would
        // launch a reduction kernel; the charge approximates that).
        ctx.compute(gaat_sim::SimDuration::from_us(5));
        let dev = ctx.device();
        let local = match ctx.machine.devices[dev.0]
            .mem
            .get(self.u[self.cur])
            .as_slice()
        {
            Some(s) => {
                let d = self.dims;
                let mut acc = 0.0;
                for z in 1..=d.z {
                    for y in 1..=d.y {
                        for x in 1..=d.x {
                            let v = s[kernels::idx(d, x, y, z)];
                            acc += v * v;
                        }
                    }
                }
                acc
            }
            None => 0.0,
        };
        let cb = Callback::to(self.sh.root, E_NORM);
        ctx.contribute(self.sh.norm_reducer, 0, local, self.sh.nblocks, cb);
    }

    /// Post receives and sends for the current iteration's halo exchange.
    /// The arrival/send counters are reset at the iteration *transition*
    /// (not here): a fast neighbour's halo may land before our own packs
    /// complete, and it must be counted, not wiped.
    fn begin_exchange(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let faces = self.faces.clone();
        match self.sh.cfg.comm {
            CommMode::GpuAware => {
                for &f in &faces {
                    let i = f.index();
                    let dev = ctx.device();
                    let recv_loc = MemLoc {
                        device: dev,
                        range: BufRange::whole(
                            self.halo_recv_d[i].expect("active"),
                            self.face_cells(f),
                        ),
                    };
                    let send_loc = MemLoc {
                        device: dev,
                        range: BufRange::whole(
                            self.halo_send_d[i].expect("active"),
                            self.face_cells(f),
                        ),
                    };
                    let mut ch = self.channels[i].take().expect("channel wired");
                    ch.recv(ctx, recv_loc, Callback::to_ref(me, E_ARRIVED, i as u64));
                    ch.send(ctx, send_loc, Callback::to_ref(me, E_SEND_DONE, i as u64));
                    self.channels[i] = Some(ch);
                }
            }
            CommMode::HostStaging => {
                // Stage each face to the host; E_STAGED per face sends the
                // runtime message.
                for &f in &faces {
                    let i = f.index();
                    let cells = self.face_cells(f);
                    let src = BufRange::whole(self.halo_send_d[i].expect("active"), cells);
                    let dst = BufRange::whole(self.halo_send_h[i].expect("active"), cells);
                    let tag_cb = Callback::to_ref(me, E_STAGED, i as u64);
                    let op = Op::d2h(src, dst);
                    ctx.launch(self.d2h, op);
                    ctx.hapi(self.d2h, tag_cb);
                }
                // Early halos parked for this iteration?
                let iter = self.iter as u64;
                while let Some(env) = self.pending.take(E_RECV_HALO, iter) {
                    self.handle_staged_halo(ctx, env);
                }
            }
        }
        self.check_exchange_complete(ctx);
    }

    /// A host-staged halo for the *current* iteration: H2D + unpack.
    fn handle_staged_halo(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let msg = env.take::<HaloMsg>();
        let i = msg.face.index();
        let cells = self.face_cells(msg.face);
        let host = self.halo_recv_h[i].expect("active");
        // Functional landing of the payload into the host staging buffer.
        if let Some(data) = &msg.data {
            let dev = ctx.device();
            ctx.machine.devices[dev.0]
                .mem
                .write(BufRange::whole(host, cells), data);
        }
        let h2d_op = Op::h2d(
            BufRange::whole(host, cells),
            BufRange::whole(self.halo_recv_d[i].expect("active"), cells),
        );
        match self.sh.cfg.sync {
            SyncMode::Original => {
                // Single transfer/(un)pack stream: order alone suffices.
                ctx.launch(self.comm, h2d_op);
                let spec = self.unpack_spec(ctx, self.cur, msg.face);
                ctx.launch(self.comm, Op::kernel(spec));
            }
            SyncMode::Optimized => {
                let ev = self.ev_face[i].expect("active");
                ctx.gpu_event_reset(ev);
                ctx.launch(self.h2d, h2d_op);
                ctx.launch_light(self.h2d, Op::record(ev));
                ctx.launch_light(self.comm, Op::wait(ev));
                let spec = self.unpack_spec(ctx, self.cur, msg.face);
                ctx.launch(self.comm, Op::kernel(spec));
            }
        }
        self.arrived += 1;
    }

    fn check_exchange_complete(&mut self, ctx: &mut Ctx<'_>) {
        if self.arrived == self.faces.len() && self.sends_done == self.faces.len() {
            self.all_halos(ctx);
        }
    }

    /// Every halo arrived and every send completed: run the back half of
    /// the iteration on the GPU.
    fn all_halos(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        let p = self.cur;
        let last = self.iter + 1 >= self.total();

        if self.sh.cfg.graphs {
            // Halo exchange followed by one graph launch (paper §III-D2).
            let g = match self.sh.cfg.graph_strategy {
                GraphStrategy::TwoGraphs => self.graphs.expect("graphs built")[p],
                GraphStrategy::UpdateParams => {
                    // Re-parameterize every node for this parity — the
                    // costly alternative the paper rejects.
                    let g = self.graphs.expect("graphs built")[0];
                    let specs = self.graph_update_specs.as_ref().expect("specs kept")[p].clone();
                    for (node, spec) in specs.into_iter().enumerate() {
                        ctx.update_graph_kernel(g, node, spec);
                    }
                    g
                }
            };
            ctx.launch_graph(self.comp, g, Callback::to(me, E_POST_ITER));
            return;
        }

        match (self.sh.cfg.sync, self.sh.cfg.fusion) {
            (SyncMode::Optimized, Fusion::C) => {
                // One kernel for unpacks + update + packs.
                let spec = self.fused_all_spec(ctx, p);
                ctx.launch(self.comp, Op::kernel(spec));
                ctx.hapi(self.comp, Callback::to(me, E_POST_ITER));
            }
            (SyncMode::Optimized, fusion) => {
                ctx.gpu_event_reset(self.ev_unpacks);
                ctx.gpu_event_reset(self.ev_update);
                if fusion == Fusion::B {
                    let spec = self.fused_unpack_spec(ctx, p);
                    ctx.launch(self.comm, Op::kernel(spec));
                }
                ctx.launch_light(self.comm, Op::record(self.ev_unpacks));
                ctx.launch_light(self.comp, Op::wait(self.ev_unpacks));
                let spec = self.update_spec(ctx, p);
                ctx.launch(self.comp, Op::kernel(spec));
                if last {
                    ctx.hapi(self.comp, Callback::to(me, E_POST_ITER));
                } else {
                    ctx.launch_light(self.comp, Op::record(self.ev_update));
                    ctx.launch_light(self.comm, Op::wait(self.ev_update));
                    self.enqueue_packs(ctx, 1 - p, Callback::to(me, E_POST_ITER));
                }
            }
            (SyncMode::Original, _) => {
                // Extra sync point after the update (pre-optimization).
                ctx.gpu_event_reset(self.ev_unpacks);
                ctx.launch_light(self.comm, Op::record(self.ev_unpacks));
                ctx.launch_light(self.comp, Op::wait(self.ev_unpacks));
                let spec = self.update_spec(ctx, p);
                ctx.launch(self.comp, Op::kernel(spec));
                ctx.hapi(self.comp, Callback::to(me, E_UPDATE_DONE));
            }
        }
    }
}

impl Chare for BlockChare {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_START => {
                // Pack the initial field and enter the exchange loop.
                self.enqueue_packs(ctx, self.cur, Callback::to(ctx.me(), E_PACKED));
            }
            E_PACKED => {
                self.begin_exchange(ctx);
            }
            E_POST_ITER => {
                self.cur = 1 - self.cur;
                self.iter += 1;
                self.arrived = 0;
                self.sends_done = 0;
                if self.on_iteration_boundary(ctx) {
                    self.begin_exchange(ctx);
                }
            }
            E_UPDATE_DONE => {
                // Original sync scheme: swap after the post-update sync,
                // then pack in a separate phase.
                self.cur = 1 - self.cur;
                self.iter += 1;
                self.arrived = 0;
                self.sends_done = 0;
                if self.on_iteration_boundary(ctx) {
                    self.enqueue_packs(ctx, self.cur, Callback::to(ctx.me(), E_PACKED));
                }
            }
            E_ARRIVED => {
                if !self.defer_unpack() {
                    let face = FACES[env.refnum as usize];
                    let spec = self.unpack_spec(ctx, self.cur, face);
                    ctx.launch(self.comm, Op::kernel(spec));
                }
                self.arrived += 1;
                self.check_exchange_complete(ctx);
            }
            E_SEND_DONE => {
                self.sends_done += 1;
                self.check_exchange_complete(ctx);
            }
            E_STAGED => {
                // Host-staging: the face's D2H completed; ship the halo as
                // a runtime message.
                let face = FACES[env.refnum as usize];
                let i = face.index();
                let cells = self.face_cells(face);
                let dev = ctx.device();
                let data = ctx.machine.devices[dev.0]
                    .mem
                    .read(BufRange::whole(self.halo_send_h[i].expect("active"), cells));
                let to = self.neighbors[i].expect("active face has neighbor");
                let msg = HaloMsg {
                    face: face.opposite(),
                    data,
                };
                ctx.send(
                    to,
                    Envelope::new(E_RECV_HALO, msg)
                        .with_refnum(self.iter as u64)
                        .with_bytes(cells as u64 * 8),
                );
                self.sends_done += 1;
                self.check_exchange_complete(ctx);
            }
            E_NORM => {
                self.norm_result = Some(env.take::<f64>());
            }
            E_RECV_HALO => {
                if env.refnum == self.iter as u64 && self.arrived < self.faces.len() {
                    self.handle_staged_halo(ctx, env);
                    self.check_exchange_complete(ctx);
                } else {
                    // A neighbour running ahead: park until we catch up.
                    self.pending.deposit(env);
                }
            }
            E_RESUME => {
                let snap = self.resume.take().expect("restore() ran before E_RESUME");
                let epoch = env.refnum as usize;
                assert_eq!(
                    snap.ints[0] as usize, epoch,
                    "block restored from a different epoch than the recovery line"
                );
                self.iter = epoch;
                self.arrived = 0;
                self.sends_done = 0;
                self.pending = WhenSet::new();
                self.done_at = None;
                if ctx.device() != self.dev {
                    self.reprovision(ctx);
                }
                // Land the checkpointed interior into the current
                // solution buffer; ghosts are refreshed by the exchange
                // the restart re-runs.
                let d = self.dims;
                if let Some(s) = ctx.machine.devices[self.dev.0]
                    .mem
                    .get_mut(self.u[self.cur])
                    .as_mut_slice()
                {
                    let mut k = 0;
                    for z in 1..=d.z {
                        for y in 1..=d.y {
                            for x in 1..=d.x {
                                s[kernels::idx(d, x, y, z)] = snap.floats[k];
                                k += 1;
                            }
                        }
                    }
                }
                // Unpack cost of the restore, then rejoin the loop the
                // same way E_START enters it: pack and exchange.
                ctx.compute(gaat_sim::SimDuration::from_us(10));
                self.enqueue_packs(ctx, self.cur, Callback::to(ctx.me(), E_PACKED));
            }
            other => panic!("unknown entry {other:?}"),
        }
    }

    fn restore(&mut self, snap: ChareSnapshot) {
        self.resume = Some(snap);
    }

    fn fork(&self) -> Option<Box<dyn Chare>> {
        // All block state is plain data (ids, counters, parked envelopes);
        // device buffers live in the machine's memory pools, which the
        // world fork deep-copies alongside this clone.
        Some(Box::new(self.clone()))
    }
}

/// Build the whole Charm-style Jacobi3D simulation: machine, chares,
/// buffers, streams, channels, and (optionally) graphs. Returns the
/// simulation, the chare ids, and the shared parameters.
pub fn build(cfg: JacobiConfig) -> (Simulation, Vec<ChareId>, Arc<Shared>) {
    let sim = Simulation::new(cfg.machine.clone());
    build_in(sim, cfg)
}

/// Like [`build`], but constructing the application inside a
/// caller-provided simulation — typically one prepared by a
/// `gaat_rt::WorldSlot`, so the engine's heap allocations are recycled
/// across a sweep. The simulation must have been built from
/// `cfg.machine` (same shape, seed, and fault plan).
pub fn build_in(mut sim: Simulation, cfg: JacobiConfig) -> (Simulation, Vec<ChareId>, Arc<Shared>) {
    cfg.validate();
    debug_assert_eq!(sim.machine.cfg.total_pes(), cfg.machine.total_pes());
    let pes = cfg.machine.total_pes();
    let nblocks = pes * cfg.odf;
    let decomp = Decomp::new(cfg.global, nblocks);
    let real = cfg.machine.real_buffers;
    let norm_reducer = sim.machine.create_reducer();
    let base = sim.machine.chare_count();
    let ids: Vec<ChareId> = (0..nblocks).map(|i| ChareId(base + i)).collect();
    let sh = Arc::new(Shared {
        cfg: cfg.clone(),
        decomp,
        norm_reducer,
        root: ids[0],
        nblocks,
    });

    for bi in 0..nblocks {
        let coord = sh.decomp.coord_of(bi);
        let dims = sh.decomp.block_dims(coord);
        let origin = sh.decomp.block_origin(coord);
        let faces = sh.decomp.active_faces(coord);
        let pe = place_chare(bi, nblocks, pes, cfg.placement);
        let dev = sim.machine.pe_device(pe);
        let device = &mut sim.machine.devices[dev.0];

        // Solution buffers (two copies, as in the paper).
        let len = kernels::ghosted_len(dims);
        let u0 = device.mem.alloc(Space::Device, len, real);
        let u1 = device.mem.alloc(Space::Device, len, real);
        if real {
            let s = device.mem.get_mut(u0).as_mut_slice().expect("real");
            for z in 1..=dims.z {
                for y in 1..=dims.y {
                    for x in 1..=dims.x {
                        s[kernels::idx(dims, x, y, z)] =
                            initial_value(origin.0 + x - 1, origin.1 + y - 1, origin.2 + z - 1);
                    }
                }
            }
        }

        let mut halo_send_d = [None; 6];
        let mut halo_recv_d = [None; 6];
        let mut halo_send_h = [None; 6];
        let mut halo_recv_h = [None; 6];
        let mut ev_face = [None; 6];
        for &f in &faces {
            let cells = f.area(dims);
            let i = f.index();
            halo_send_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            halo_recv_d[i] = Some(device.mem.alloc(Space::Device, cells, real));
            if cfg.comm == CommMode::HostStaging {
                halo_send_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
                halo_recv_h[i] = Some(device.mem.alloc(Space::Host, cells, real));
                ev_face[i] = Some(device.create_event());
            }
        }

        // Streams: compute at low priority; communication-related work at
        // high priority (paper §III-A). The original scheme uses a single
        // transfer stream; the optimized one splits D2H and H2D.
        let comp = device.create_stream(0);
        let prio = cfg.comm_priority;
        let comm = device.create_stream(prio);
        let (d2h, h2d) = match cfg.sync {
            SyncMode::Original => (comm, comm),
            SyncMode::Optimized => (device.create_stream(prio), device.create_stream(prio)),
        };
        let ev_unpacks = device.create_event();
        let ev_update = device.create_event();

        let mut neighbors = [None; 6];
        for &f in &faces {
            let n = sh.decomp.neighbor(coord, f).expect("active face");
            neighbors[f.index()] = Some(ids[sh.decomp.index_of(n)]);
        }

        let mut block = BlockChare {
            sh: sh.clone(),
            dims,
            faces,
            neighbors,
            channels: Default::default(),
            u: [u0, u1],
            cur: 0,
            halo_send_d,
            halo_recv_d,
            halo_send_h,
            halo_recv_h,
            comp,
            comm,
            d2h,
            h2d,
            ev_unpacks,
            ev_update,
            ev_face,
            graphs: None,
            graph_update_specs: None,
            iter: 0,
            arrived: 0,
            sends_done: 0,
            pending: WhenSet::new(),
            dev,
            resume: None,
            warm_at: if cfg.warmup == 0 {
                Some(SimTime::ZERO)
            } else {
                None
            },
            done_at: None,
            norm_result: None,
        };

        if cfg.graphs {
            let (graphs, specs) = build_graphs(&cfg, &block, &mut sim.machine.devices[dev.0]);
            block.graphs = Some(graphs);
            if cfg.graph_strategy == GraphStrategy::UpdateParams {
                block.graph_update_specs = Some(specs);
            }
        }

        let id = sim.machine.create_chare(pe, Box::new(block));
        assert_eq!(id, ids[bi]);
    }

    for d in &sim.machine.devices {
        d.assert_memory_fits();
    }

    if !cfg.machine.faults.pe_failures.is_empty() || cfg.machine.lb.enabled() {
        assert!(
            cfg.checkpoint_every > 0,
            "PE failures or the adaptive LB are armed but checkpointing is off"
        );
        sim.machine.set_recovery_resume(ids.clone(), E_RESUME);
    }

    // Wire channels (GPU-aware mode).
    if cfg.comm == CommMode::GpuAware {
        for bi in 0..nblocks {
            let coord = sh.decomp.coord_of(bi);
            for &f in &sh.decomp.active_faces(coord) {
                let n = sh.decomp.neighbor(coord, f).expect("active");
                let ni = sh.decomp.index_of(n);
                if bi < ni {
                    let (ea, eb) = create_channel(&mut sim.machine, ids[bi], ids[ni]);
                    set_channel(&mut sim.machine, ids[bi], f, ea);
                    set_channel(&mut sim.machine, ids[ni], f.opposite(), eb);
                }
            }
        }
    }

    (sim, ids, sh)
}

fn set_channel(m: &mut gaat_rt::Machine, id: ChareId, f: Face, end: ChannelEnd) {
    let any = m.chare_for_setup(id);
    let block = any.downcast_mut::<BlockChare>().expect("block chare");
    block.channels[f.index()] = Some(end);
}

/// Capture the two per-parity iteration graphs for a block, returning the
/// graph handles and the node-ordered kernel specs per parity (kept when
/// the single-graph UpdateParams strategy needs to re-parameterize).
fn build_graphs(
    cfg: &JacobiConfig,
    block: &BlockChare,
    device: &mut gaat_gpu::Device,
) -> ([GraphId; 2], [Vec<KernelSpec>; 2]) {
    let t = device.timing.clone();
    let mut out = [GraphId(0); 2];
    let mut all_specs: [Vec<KernelSpec>; 2] = [Vec::new(), Vec::new()];
    for (gi, p) in [0usize, 1].into_iter().enumerate() {
        let mut b = GraphBuilder::new();
        let mut specs: Vec<KernelSpec> = Vec::new();
        let dims = block.dims;
        let (uin, uout) = (block.u[p], block.u[1 - p]);
        let faces = block.faces.clone();
        let cells: Vec<usize> = faces.iter().map(|&f| f.area(dims)).collect();
        let recv: Vec<(Face, BufferId)> = faces
            .iter()
            .map(|&f| (f, block.halo_recv_d[f.index()].expect("active")))
            .collect();
        let send: Vec<(Face, BufferId)> = faces
            .iter()
            .map(|&f| (f, block.halo_send_d[f.index()].expect("active")))
            .collect();
        let add = |b: &mut GraphBuilder,
                   specs: &mut Vec<KernelSpec>,
                   spec: KernelSpec,
                   class: usize,
                   deps: &[gaat_gpu::NodeIndex]| {
            specs.push(spec.clone());
            b.kernel(spec, class, deps)
        };

        if cfg.fusion == Fusion::C {
            // One node for everything.
            let work = kernels::fused_all_work(&t, dims.count(), &cells);
            let (r2, s2) = (recv.clone(), send.clone());
            let spec = KernelSpec::with_func("fused_all", work, move |m| {
                for &(f, h) in &r2 {
                    kernels::unpack(m, uin, h, dims, f);
                }
                kernels::update(m, uin, uout, dims);
                for &(f, h) in &s2 {
                    kernels::pack(m, uout, h, dims, f);
                }
            });
            add(&mut b, &mut specs, spec, 0, &[]);
            out[gi] = device.register_graph(b.build());
            all_specs[gi] = specs;
            continue;
        }

        // Unpack roots.
        let mut unpack_nodes = Vec::new();
        match cfg.fusion {
            Fusion::B => {
                let work = kernels::fused_copy_work(&t, &cells);
                let r2 = recv.clone();
                let spec = KernelSpec::with_func("unpack_fused", work, move |m| {
                    for &(f, h) in &r2 {
                        kernels::unpack(m, uin, h, dims, f);
                    }
                });
                unpack_nodes.push(add(&mut b, &mut specs, spec, 2, &[]));
            }
            Fusion::None | Fusion::A => {
                for &(f, h) in &recv {
                    let work = kernels::copy_work(&t, f.area(dims));
                    let spec = KernelSpec::with_func("unpack", work, move |m| {
                        kernels::unpack(m, uin, h, dims, f);
                    });
                    unpack_nodes.push(add(&mut b, &mut specs, spec, 2, &[]));
                }
            }
            Fusion::C => unreachable!(),
        }

        // Update depends on all unpacks.
        let update_spec =
            KernelSpec::with_func("update", kernels::update_work(&t, dims.count()), move |m| {
                kernels::update(m, uin, uout, dims)
            });
        let update = add(&mut b, &mut specs, update_spec, 0, &unpack_nodes);

        // Packs depend on the update.
        match cfg.fusion {
            Fusion::A | Fusion::B => {
                let work = kernels::fused_copy_work(&t, &cells);
                let s2 = send.clone();
                let spec = KernelSpec::with_func("pack_fused", work, move |m| {
                    for &(f, h) in &s2 {
                        kernels::pack(m, uout, h, dims, f);
                    }
                });
                add(&mut b, &mut specs, spec, 2, &[update]);
            }
            Fusion::None => {
                for &(f, h) in &send {
                    let work = kernels::copy_work(&t, f.area(dims));
                    let spec = KernelSpec::with_func("pack", work, move |m| {
                        kernels::pack(m, uout, h, dims, f);
                    });
                    add(&mut b, &mut specs, spec, 2, &[update]);
                }
            }
            Fusion::C => unreachable!(),
        }
        out[gi] = device.register_graph(b.build());
        all_specs[gi] = specs;
    }
    (out, all_specs)
}

/// Run a built simulation to completion and collect the result.
pub fn run(sim: &mut Simulation, ids: &[ChareId], sh: &Shared) -> RunResult {
    run_inner(sim, ids, sh, None)
}

/// [`run`] under an explicit node→shard partition (windowed execution;
/// determinism tests randomize the map to show the partition cannot
/// change results).
pub fn run_with_partition(
    sim: &mut Simulation,
    ids: &[ChareId],
    sh: &Shared,
    node_to_shard: Vec<usize>,
) -> RunResult {
    run_inner(sim, ids, sh, Some(node_to_shard))
}

fn run_inner(
    sim: &mut Simulation,
    ids: &[ChareId],
    sh: &Shared,
    partition: Option<Vec<usize>>,
) -> RunResult {
    // Start every block via the runtime's tree broadcast (the
    // `block_proxy.run()` of the paper's Fig. 3). Startup is outside the
    // timed region, but the costs are real.
    {
        let Simulation { sim, machine, .. } = sim;
        machine.broadcast(sim, ids, E_START, 0);
    }
    let outcome = match partition {
        Some(map) => sim.run_with_partition(map),
        None => sim.run(),
    };
    assert_eq!(
        outcome,
        gaat_rt::RunOutcome::Drained,
        "simulation should quiesce"
    );
    collect(sim, ids, sh)
}

/// Start the application and run to quiescence, tolerating stalls: with
/// the reliable transport off and message drops armed, a block that
/// loses a halo message parks forever and the queue drains early.
/// Returns the result if every block finished, plus the stalled-block
/// count. This is the sweep engine's runner — a drop-rate axis must not
/// abort the whole grid.
pub fn run_tolerant(
    sim: &mut Simulation,
    ids: &[ChareId],
    sh: &Shared,
) -> (Option<RunResult>, usize) {
    start(sim, ids);
    finish_tolerant(sim, ids, sh)
}

/// Tree-broadcast `E_START` to every block without running the engine.
/// The sweep memoizer needs the start and the drain as separate steps so
/// it can pause at a fault-onset instant, snapshot the world, and fork;
/// [`run_tolerant`] is exactly `start` + [`finish_tolerant`].
pub fn start(sim: &mut Simulation, ids: &[ChareId]) {
    let Simulation { sim, machine, .. } = sim;
    machine.broadcast(sim, ids, E_START, 0);
}

/// Drain an already-started run to quiescence and collect, tolerating
/// stalls (see [`run_tolerant`]). Also the second half of a forked
/// branch: after a [`Simulation::restore`] the broadcast is already in
/// the replayed event state, so the branch resumes here directly.
pub fn finish_tolerant(
    sim: &mut Simulation,
    ids: &[ChareId],
    sh: &Shared,
) -> (Option<RunResult>, usize) {
    let outcome = sim.run();
    assert_eq!(
        outcome,
        gaat_rt::RunOutcome::Drained,
        "simulation should quiesce"
    );
    let stalled = ids
        .iter()
        .filter(|&&id| sim.machine.chare_as::<BlockChare>(id).done_at.is_none())
        .count();
    if stalled > 0 {
        return (None, stalled);
    }
    (Some(collect(sim, ids, sh)), 0)
}

/// Fold a drained run's per-block state into a [`RunResult`].
fn collect(sim: &mut Simulation, ids: &[ChareId], sh: &Shared) -> RunResult {
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    for &id in ids {
        let b = sim.machine.chare_as::<BlockChare>(id);
        warm = warm.max(b.warm_at.expect("block warmed up"));
        done = done.max(b.done_at.expect("block finished"));
    }
    let iters = sh.cfg.iters as u64;
    let checksum = checksum(sim, ids, sh);
    let kernels: u64 = sim.machine.devices.iter().map(|d| d.stats().kernels).sum();
    let graph_launches: u64 = sim
        .machine
        .devices
        .iter()
        .map(|d| d.stats().graph_launches)
        .sum();
    let pes = sim.machine.pes.len();
    let cpu_utilization = (0..pes)
        .map(|p| sim.machine.pe_utilization(p, done))
        .sum::<f64>()
        / pes as f64;
    let reduced_norm = if sh.cfg.compute_norm {
        let root = sim.machine.chare_as::<BlockChare>(sh.root);
        Some(root.norm_result.expect("norm reduction completed"))
    } else {
        None
    };
    RunResult {
        time_per_iter: done.since(warm) / iters,
        total: done.since(SimTime::ZERO),
        warm_at: warm,
        checksum,
        entries: sim.machine.stats().entries,
        kernels,
        graph_launches,
        cpu_utilization,
        reduced_norm,
    }
}

/// Sum of squares of the final field (`None` in phantom mode). The field
/// is reconstructed in global order first, so the checksum is independent
/// of the decomposition and bit-comparable across variants.
pub fn checksum(sim: &Simulation, ids: &[ChareId], sh: &Shared) -> Option<f64> {
    if !sh.cfg.machine.real_buffers {
        return None;
    }
    let mut field = vec![0.0f64; sh.cfg.global.count()];
    let g = sh.cfg.global;
    for &id in ids {
        let b = sim.machine.chare_as::<BlockChare>(id);
        let pe = sim.machine.pe_of(id);
        let dev = sim.machine.pe_device(pe);
        let buf = sim.machine.devices[dev.0].mem.get(b.u[b.cur]);
        let s = buf.as_slice()?;
        let d = b.dims;
        let coord = sh.decomp.coord_of(id.0 - ids[0].0);
        let o = sh.decomp.block_origin(coord);
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let gi = ((o.2 + z - 1) * g.y + (o.1 + y - 1)) * g.x + (o.0 + x - 1);
                    field[gi] = s[kernels::idx(d, x, y, z)];
                }
            }
        }
    }
    Some(field.iter().map(|v| v * v).sum())
}

/// Compare every block's final field against the sequential reference,
/// bit-for-bit. Returns the number of cells compared.
pub fn validate_against_reference(sim: &Simulation, ids: &[ChareId], sh: &Shared) -> usize {
    let mut reference = crate::reference::Reference::new(sh.cfg.global);
    reference.run(sh.cfg.total_iters());
    let mut compared = 0;
    for &id in ids {
        let b = sim.machine.chare_as::<BlockChare>(id);
        let pe = sim.machine.pe_of(id);
        let dev = sim.machine.pe_device(pe);
        let buf = sim.machine.devices[dev.0].mem.get(b.u[b.cur]);
        let s = buf.as_slice().expect("validation needs real buffers");
        let d = b.dims;
        let coord = sh.decomp.coord_of(id.0 - ids[0].0);
        let o = sh.decomp.block_origin(coord);
        for z in 1..=d.z {
            for y in 1..=d.y {
                for x in 1..=d.x {
                    let got = s[kernels::idx(d, x, y, z)];
                    let want = reference.at(o.0 + x - 1, o.1 + y - 1, o.2 + z - 1);
                    assert_eq!(
                        got, want,
                        "block {coord:?} cell ({x},{y},{z}): {got} != {want}"
                    );
                    compared += 1;
                }
            }
        }
    }
    compared
}
