//! 3D grid geometry: decomposition of the global grid into blocks,
//! neighbour topology, and chare→PE mapping.
//!
//! The grid is decomposed "in a way that minimizes the aggregate surface
//! area, which is tied to communication volume" (paper §IV-A): the
//! process (or chare) count is factorized into a 3D grid whose block
//! faces have the smallest total area.

/// Extents in three dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dims {
    /// X extent (fastest-varying in memory).
    pub x: usize,
    /// Y extent.
    pub y: usize,
    /// Z extent.
    pub z: usize,
}

impl Dims {
    /// Construct from components.
    pub const fn new(x: usize, y: usize, z: usize) -> Self {
        Dims { x, y, z }
    }

    /// Cube with side `n`.
    pub const fn cube(n: usize) -> Self {
        Dims { x: n, y: n, z: n }
    }

    /// Total cells.
    pub fn count(&self) -> usize {
        self.x * self.y * self.z
    }
}

/// One of the six block faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Face {
    /// −x
    Xm,
    /// +x
    Xp,
    /// −y
    Ym,
    /// +y
    Yp,
    /// −z
    Zm,
    /// +z
    Zp,
}

/// All faces in canonical order.
pub const FACES: [Face; 6] = [Face::Xm, Face::Xp, Face::Ym, Face::Yp, Face::Zm, Face::Zp];

impl Face {
    /// Canonical index 0..6.
    pub fn index(self) -> usize {
        match self {
            Face::Xm => 0,
            Face::Xp => 1,
            Face::Ym => 2,
            Face::Yp => 3,
            Face::Zm => 4,
            Face::Zp => 5,
        }
    }

    /// The face seen from the other side.
    pub fn opposite(self) -> Face {
        match self {
            Face::Xm => Face::Xp,
            Face::Xp => Face::Xm,
            Face::Ym => Face::Yp,
            Face::Yp => Face::Ym,
            Face::Zm => Face::Zp,
            Face::Zp => Face::Zm,
        }
    }

    /// Axis (0=x, 1=y, 2=z) and direction (−1 or +1).
    pub fn axis_dir(self) -> (usize, isize) {
        match self {
            Face::Xm => (0, -1),
            Face::Xp => (0, 1),
            Face::Ym => (1, -1),
            Face::Yp => (1, 1),
            Face::Zm => (2, -1),
            Face::Zp => (2, 1),
        }
    }

    /// Cells on this face of a block with interior dims `d`.
    pub fn area(self, d: Dims) -> usize {
        match self.axis_dir().0 {
            0 => d.y * d.z,
            1 => d.x * d.z,
            _ => d.x * d.y,
        }
    }
}

/// Factorize `p` into a 3D grid minimizing the total block surface area
/// for a global grid of `global` cells. Deterministic: ties break toward
/// the lexicographically smallest (x, y, z).
pub fn best_grid(p: usize, global: Dims) -> Dims {
    assert!(p > 0);
    let mut best: Option<(f64, Dims)> = None;
    let mut i = 1;
    while i * i * i <= p {
        if p.is_multiple_of(i) {
            let rest = p / i;
            let mut j = i;
            while j * j <= rest {
                if rest.is_multiple_of(j) {
                    let k = rest / j;
                    // All permutations of (i, j, k) over the axes.
                    for (a, b, c) in [
                        (i, j, k),
                        (i, k, j),
                        (j, i, k),
                        (j, k, i),
                        (k, i, j),
                        (k, j, i),
                    ] {
                        let bx = global.x as f64 / a as f64;
                        let by = global.y as f64 / b as f64;
                        let bz = global.z as f64 / c as f64;
                        let surface = 2.0 * (bx * by + by * bz + bx * bz);
                        let cand = Dims::new(a, b, c);
                        let better = match &best {
                            None => true,
                            Some((s, d)) => {
                                surface < *s - 1e-9
                                    || (surface < *s + 1e-9
                                        && (cand.x, cand.y, cand.z) < (d.x, d.y, d.z))
                            }
                        };
                        if better {
                            best = Some((surface, cand));
                        }
                    }
                }
                j += 1;
            }
        }
        i += 1;
    }
    best.expect("p >= 1 always has a factorization").1
}

/// A decomposition of a global grid into a 3D grid of blocks.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Decomp {
    /// Global grid extents.
    pub global: Dims,
    /// Block-grid extents (number of blocks per axis).
    pub grid: Dims,
}

impl Decomp {
    /// Decompose `global` into `count` surface-minimizing blocks.
    pub fn new(global: Dims, count: usize) -> Self {
        Decomp {
            global,
            grid: best_grid(count, global),
        }
    }

    /// Number of blocks.
    pub fn count(&self) -> usize {
        self.grid.count()
    }

    /// Block coordinate of a linear index (x fastest).
    pub fn coord_of(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.grid.x;
        let y = (idx / self.grid.x) % self.grid.y;
        let z = idx / (self.grid.x * self.grid.y);
        (x, y, z)
    }

    /// Linear index of a block coordinate.
    pub fn index_of(&self, c: (usize, usize, usize)) -> usize {
        (c.2 * self.grid.y + c.1) * self.grid.x + c.0
    }

    fn split(total: usize, parts: usize, i: usize) -> (usize, usize) {
        // First `total % parts` parts get one extra cell.
        let base = total / parts;
        let extra = total % parts;
        let len = base + usize::from(i < extra);
        let start = base * i + i.min(extra);
        (start, len)
    }

    /// Interior dims of the block at `c` (remainders spread to the
    /// lowest-coordinate blocks).
    pub fn block_dims(&self, c: (usize, usize, usize)) -> Dims {
        Dims::new(
            Self::split(self.global.x, self.grid.x, c.0).1,
            Self::split(self.global.y, self.grid.y, c.1).1,
            Self::split(self.global.z, self.grid.z, c.2).1,
        )
    }

    /// Global origin (lowest corner) of the block at `c`.
    pub fn block_origin(&self, c: (usize, usize, usize)) -> (usize, usize, usize) {
        (
            Self::split(self.global.x, self.grid.x, c.0).0,
            Self::split(self.global.y, self.grid.y, c.1).0,
            Self::split(self.global.z, self.grid.z, c.2).0,
        )
    }

    /// Neighbouring block coordinate across `face`, or `None` at the
    /// global boundary.
    pub fn neighbor(&self, c: (usize, usize, usize), face: Face) -> Option<(usize, usize, usize)> {
        let (axis, dir) = face.axis_dir();
        let mut n = [c.0 as isize, c.1 as isize, c.2 as isize];
        n[axis] += dir;
        let lim = [
            self.grid.x as isize,
            self.grid.y as isize,
            self.grid.z as isize,
        ];
        if n[axis] < 0 || n[axis] >= lim[axis] {
            return None;
        }
        Some((n[0] as usize, n[1] as usize, n[2] as usize))
    }

    /// Faces of block `c` that have neighbours.
    pub fn active_faces(&self, c: (usize, usize, usize)) -> Vec<Face> {
        FACES
            .iter()
            .copied()
            .filter(|&f| self.neighbor(c, f).is_some())
            .collect()
    }
}

/// Map chare `idx` of `nchares` onto one of `npes` PEs: contiguous blocks
/// of the linearized chare order (the Charm++ default block map).
pub fn chare_to_pe(idx: usize, nchares: usize, npes: usize) -> usize {
    assert!(idx < nchares);
    // Even split with remainders to the front, mirroring Decomp::split.
    let base = nchares / npes;
    let extra = nchares % npes;
    let boundary = (base + 1) * extra;
    if idx < boundary {
        idx / (base + 1)
    } else {
        extra + (idx - boundary) / base.max(1)
    }
}

/// Map chare `idx` onto a PE under the chosen placement policy:
/// [`Placement::Packed`] is [`chare_to_pe`]; [`Placement::RoundRobin`]
/// strides adjacent chares across PEs (and therefore nodes).
///
/// [`Placement::Packed`]: crate::app::Placement::Packed
/// [`Placement::RoundRobin`]: crate::app::Placement::RoundRobin
pub fn place_chare(
    idx: usize,
    nchares: usize,
    npes: usize,
    placement: crate::app::Placement,
) -> usize {
    match placement {
        crate::app::Placement::Packed => chare_to_pe(idx, nchares, npes),
        crate::app::Placement::RoundRobin => {
            assert!(idx < nchares);
            idx % npes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_grid_minimizes_surface_for_cube() {
        // A cube split 8 ways should be 2x2x2.
        assert_eq!(best_grid(8, Dims::cube(256)), Dims::new(2, 2, 2));
        // 6 ways: 1x2x3 (any permutation has equal surface for a cube; the
        // lexicographically smallest wins).
        let g = best_grid(6, Dims::cube(1536));
        assert_eq!(g.count(), 6);
        assert_eq!(g, Dims::new(1, 2, 3));
    }

    #[test]
    fn best_grid_respects_anisotropy() {
        // A grid long in z should be cut along z first.
        let g = best_grid(4, Dims::new(64, 64, 1024));
        assert_eq!(g, Dims::new(1, 1, 4));
    }

    #[test]
    fn paper_halo_size_reproduced() {
        // 1536^3 per node over 6 GPUs: largest face must be ~9 MiB
        // (paper §IV-B: "at most 9 MB").
        let d = Decomp::new(Dims::cube(1536), 6);
        let dims = d.block_dims((0, 0, 0));
        let max_face = FACES.iter().map(|f| f.area(dims) * 8).max().expect("faces");
        assert_eq!(max_face, 1536 * 768 * 8); // 9.4 MB
    }

    #[test]
    fn split_covers_grid_exactly() {
        let d = Decomp::new(Dims::new(100, 101, 7), 12);
        let mut total = 0;
        for idx in 0..d.count() {
            let c = d.coord_of(idx);
            assert_eq!(d.index_of(c), idx);
            total += d.block_dims(c).count();
        }
        assert_eq!(total, 100 * 101 * 7);
    }

    #[test]
    fn origins_tile_without_overlap() {
        let d = Decomp::new(Dims::new(64, 64, 64), 8);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..d.count() {
            let c = d.coord_of(idx);
            let o = d.block_origin(c);
            let b = d.block_dims(c);
            for z in 0..b.z {
                for y in 0..b.y {
                    for x in 0..b.x {
                        assert!(seen.insert((o.0 + x, o.1 + y, o.2 + z)));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 64 * 64 * 64);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let d = Decomp::new(Dims::cube(96), 24);
        for idx in 0..d.count() {
            let c = d.coord_of(idx);
            for &f in &FACES {
                if let Some(n) = d.neighbor(c, f) {
                    assert_eq!(d.neighbor(n, f.opposite()), Some(c));
                }
            }
        }
    }

    #[test]
    fn boundary_blocks_have_fewer_faces() {
        let d = Decomp::new(Dims::cube(64), 27); // 3x3x3
        let corner = d.coord_of(0);
        assert_eq!(d.active_faces(corner).len(), 3);
        let center = d.index_of((1, 1, 1));
        assert_eq!(d.active_faces(d.coord_of(center)).len(), 6);
    }

    #[test]
    fn face_properties() {
        for &f in &FACES {
            assert_eq!(f.opposite().opposite(), f);
            assert_eq!(FACES[f.index()], f);
        }
        let d = Dims::new(4, 5, 6);
        assert_eq!(Face::Xm.area(d), 30);
        assert_eq!(Face::Yp.area(d), 24);
        assert_eq!(Face::Zm.area(d), 20);
    }

    #[test]
    fn chare_mapping_is_balanced_and_ordered() {
        let (nchares, npes) = (26, 8);
        let mut counts = vec![0usize; npes];
        let mut last = 0;
        for i in 0..nchares {
            let pe = chare_to_pe(i, nchares, npes);
            assert!(pe >= last, "mapping must be monotone");
            assert!(pe < npes);
            last = pe;
            counts[pe] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), nchares);
        let (mn, mx) = (
            counts.iter().min().expect("nonempty"),
            counts.iter().max().expect("nonempty"),
        );
        assert!(mx - mn <= 1, "balanced within 1: {counts:?}");
    }

    #[test]
    fn chare_mapping_odf1_is_identity() {
        for i in 0..16 {
            assert_eq!(chare_to_pe(i, 16, 16), i);
        }
    }
}
