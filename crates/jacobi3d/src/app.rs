//! Application-level configuration and results for Jacobi3D runs.

use gaat_rt::MachineConfig;
use gaat_sim::{SimDuration, SimTime};

use crate::geom::Dims;

/// How halo data travels between blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommMode {
    /// Application-level host staging: explicit D2H, host message, H2D
    /// (the `-H` variants in the paper).
    HostStaging,
    /// GPU-aware communication: device buffers handed directly to the
    /// communication layer (the `-D` variants).
    GpuAware,
}

/// Host-device synchronization scheme (paper §III-C / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SyncMode {
    /// The original implementation: two sync points per iteration (after
    /// the update and before the halo exchange) and a single
    /// high-priority stream for transfers and (un)packing.
    Original,
    /// The optimized implementation: one sync point per iteration and
    /// separate D2H / H2D streams overlapping with (un)packing.
    Optimized,
}

/// Kernel fusion strategy (paper §III-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Fusion {
    /// No fusion: one kernel per pack, unpack, and update.
    None,
    /// Strategy A: the six pack kernels fused into one.
    A,
    /// Strategy B: packs fused and unpacks fused (two kernels).
    B,
    /// Strategy C: unpacks + update + packs in a single kernel.
    C,
}

impl Fusion {
    /// True when unpacking must wait for *all* halos (fused unpack).
    pub fn defers_unpack(self) -> bool {
        matches!(self, Fusion::B | Fusion::C)
    }
}

/// How graph execution handles the per-iteration in/out pointer swap
/// (paper §III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GraphStrategy {
    /// Two captured graphs with the buffer pointers exchanged, alternated
    /// every iteration — the paper's solution.
    TwoGraphs,
    /// A single graph whose every node is re-parameterized each iteration
    /// (`cudaGraphExecKernelNodeSetParams`) — the alternative the paper
    /// rejects because the update cost "would void the benefits".
    UpdateParams,
}

/// How chares map onto PEs (and therefore nodes). Placement decides how
/// much halo traffic crosses node boundaries, which is what the
/// topology-aware fabric model prices: a congestion ablation runs the
/// same problem under both placements and compares hot links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// Contiguous blocks of the linearized chare order per PE (the
    /// Charm++ default block map) — neighbours mostly share a node.
    Packed,
    /// Chare `i` on PE `i % npes` — adjacent blocks land on different
    /// PEs/nodes, maximizing inter-node halo traffic (adversarial for
    /// the interconnect).
    RoundRobin,
}

/// A full experiment description.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JacobiConfig {
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// Global grid extents.
    pub global: Dims,
    /// Overdecomposition factor: chares per PE (task-runtime versions
    /// only; the MPI versions always run one rank per PE).
    pub odf: usize,
    /// Chare-to-PE (and node) mapping (task-runtime versions only).
    pub placement: Placement,
    /// Halo transport.
    pub comm: CommMode,
    /// Synchronization scheme.
    pub sync: SyncMode,
    /// Kernel fusion strategy.
    pub fusion: Fusion,
    /// Execute each iteration's kernels as a captured graph (two
    /// alternating graphs for the in/out pointer swap).
    pub graphs: bool,
    /// Pointer-swap handling when `graphs` is on.
    pub graph_strategy: GraphStrategy,
    /// Timed iterations.
    pub iters: usize,
    /// Warm-up iterations excluded from the timers (10 in the paper).
    pub warmup: usize,
    /// MPI manual-overlap variant (interior update overlapped with halo
    /// exchange, paper Fig. 1).
    pub overlap: bool,
    /// Priority class of communication-related streams (packs, unpacks,
    /// transfers). The paper argues these must outrank compute (§III-A);
    /// setting this to 0 reproduces the unprioritized ablation.
    pub comm_priority: usize,
    /// Virtual MPI ranks per PE for the MPI versions (AMPI-style
    /// virtualization, the paper's stated future work). 1 = plain MPI.
    /// With more than one, blocking GPU waits become thread yields (as
    /// AMPI's user-level threads would), so co-located ranks overlap.
    pub virtual_ranks: usize,
    /// After the last iteration, compute the global squared norm of the
    /// field via a runtime reduction over all blocks (task-runtime
    /// version only). Functional value requires real buffers.
    pub compute_norm: bool,
    /// Checkpoint every N iteration boundaries to the buddy PE (0 = off;
    /// task-runtime version only). Required when the machine's fault
    /// plan schedules PE failures.
    pub checkpoint_every: usize,
}

impl JacobiConfig {
    /// A sane default experiment on the given machine and grid.
    pub fn new(machine: MachineConfig, global: Dims) -> Self {
        JacobiConfig {
            machine,
            global,
            odf: 1,
            placement: Placement::Packed,
            comm: CommMode::GpuAware,
            sync: SyncMode::Optimized,
            fusion: Fusion::None,
            graphs: false,
            graph_strategy: GraphStrategy::TwoGraphs,
            iters: 100,
            warmup: 10,
            overlap: false,
            comm_priority: 2,
            virtual_ranks: 1,
            compute_norm: false,
            checkpoint_every: 0,
        }
    }

    /// Total iterations including warm-up.
    pub fn total_iters(&self) -> usize {
        self.iters + self.warmup
    }

    /// Panics on inconsistent combinations (mirrors the paper's usage:
    /// fusion and graphs only with GPU-aware communication; the original
    /// sync scheme predates fusion/graphs).
    pub fn validate(&self) {
        assert!(self.odf >= 1, "ODF must be at least 1");
        assert!(self.virtual_ranks >= 1, "need at least one rank per PE");
        assert!(self.iters > 0, "need at least one timed iteration");
        if self.fusion != Fusion::None || self.graphs {
            assert_eq!(
                self.comm,
                CommMode::GpuAware,
                "fusion/graphs are only used with GPU-aware communication"
            );
            assert_eq!(
                self.sync,
                SyncMode::Optimized,
                "fusion/graphs build on the optimized implementation"
            );
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunResult {
    /// Mean time per timed iteration (the paper's y-axis).
    pub time_per_iter: SimDuration,
    /// End-to-end simulated time.
    pub total: SimDuration,
    /// Time at which every block had finished warm-up.
    pub warm_at: SimTime,
    /// Sum of squares of the final field (validation fingerprint); `None`
    /// in phantom mode.
    pub checksum: Option<f64>,
    /// Global squared norm obtained through the runtime's reduction tree
    /// (`compute_norm`); `None` when not requested.
    pub reduced_norm: Option<f64>,
    /// Entry methods executed.
    pub entries: u64,
    /// Kernels launched via streams.
    pub kernels: u64,
    /// Graph launches.
    pub graph_launches: u64,
    /// Mean CPU utilization across PEs over the run.
    pub cpu_utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_paper_combos() {
        let mut c = JacobiConfig::new(MachineConfig::validation(1, 2), Dims::cube(12));
        c.validate();
        c.comm = CommMode::GpuAware;
        c.fusion = Fusion::C;
        c.graphs = true;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "GPU-aware")]
    fn fusion_requires_gpu_aware() {
        let mut c = JacobiConfig::new(MachineConfig::validation(1, 2), Dims::cube(12));
        c.comm = CommMode::HostStaging;
        c.fusion = Fusion::A;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "optimized")]
    fn graphs_require_optimized_sync() {
        let mut c = JacobiConfig::new(MachineConfig::validation(1, 2), Dims::cube(12));
        c.sync = SyncMode::Original;
        c.graphs = true;
        c.validate();
    }

    #[test]
    fn fusion_deferral() {
        assert!(!Fusion::None.defers_unpack());
        assert!(!Fusion::A.defers_unpack());
        assert!(Fusion::B.defers_unpack());
        assert!(Fusion::C.defers_unpack());
    }
}
