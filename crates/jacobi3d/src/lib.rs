//! # gaat-jacobi3d — the Jacobi3D proxy application
//!
//! The scientific proxy application the paper evaluates with: a 7-point
//! Jacobi relaxation on a 3D grid, decomposed into blocks that exchange
//! halos every iteration. Four versions, as in the paper's Fig. 7:
//!
//! - **MPI-H** — MPI-style ranks, application-level host staging.
//! - **MPI-D** — MPI-style ranks, CUDA-aware (device buffers to the
//!   communication layer).
//! - **Charm-H** — overdecomposed task-runtime version, host staging.
//! - **Charm-D** — overdecomposed task-runtime version with GPU-aware
//!   Channel API communication.
//!
//! Plus the paper's §III knobs: original vs optimized host-device
//! synchronization (Fig. 6), kernel fusion strategies A/B/C (Fig. 8),
//! and graph execution (Fig. 9).
//!
//! In validation mode (small grids, real buffers) every variant's final
//! field is compared bit-for-bit against a sequential reference solver.

#![warn(missing_docs)]

pub mod app;
pub mod charm;
pub mod geom;
pub mod kernels;
pub mod mpi_app;
pub mod reference;

pub use app::{CommMode, Fusion, JacobiConfig, Placement, RunResult, SyncMode};
pub use geom::{best_grid, chare_to_pe, place_chare, Decomp, Dims, Face, FACES};
pub use reference::Reference;

/// Run a Charm-style experiment end to end.
pub fn run_charm(cfg: JacobiConfig) -> RunResult {
    run_charm_in(gaat_rt::Simulation::new(cfg.machine.clone()), cfg).1
}

/// Run an MPI-style experiment end to end.
pub fn run_mpi(cfg: JacobiConfig) -> RunResult {
    run_mpi_in(gaat_rt::Simulation::new(cfg.machine.clone()), cfg).1
}

/// [`run_charm`] in a caller-provided engine (e.g. a recycled
/// [`gaat_rt::WorldSlot`] world); returns the finished simulation so the
/// caller can retire it back into the slot.
pub fn run_charm_in(
    sim0: gaat_rt::Simulation,
    cfg: JacobiConfig,
) -> (gaat_rt::Simulation, RunResult) {
    let (mut sim, ids, sh) = charm::build_in(sim0, cfg);
    let r = charm::run(&mut sim, &ids, &sh);
    (sim, r)
}

/// [`run_mpi`] in a caller-provided engine; returns the finished
/// simulation so the caller can retire it back into the slot.
pub fn run_mpi_in(
    sim0: gaat_rt::Simulation,
    cfg: JacobiConfig,
) -> (gaat_rt::Simulation, RunResult) {
    let (mut sim, ids, sh) = mpi_app::build_in(sim0, cfg);
    let r = mpi_app::run(&mut sim, &ids, &sh);
    (sim, r)
}
