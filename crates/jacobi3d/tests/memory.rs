//! GPU memory accounting: the paper reports ~9 GB of V100 HBM used per
//! GPU at the 1536³-per-node weak-scaling size (two copies of the block);
//! the model's accounting must reproduce that, and over-capacity
//! configurations must fail loudly like a real `cudaMalloc` would.

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::MachineConfig;

#[test]
fn paper_memory_footprint_reproduced() {
    // 1536^3 per node over 6 GPUs, ODF-1, phantom buffers.
    let mut cfg = JacobiConfig::new(MachineConfig::summit(1), Dims::cube(1536));
    cfg.comm = CommMode::GpuAware;
    cfg.iters = 1;
    cfg.warmup = 0;
    let (sim, _ids, _sh) = charm::build(cfg);
    for d in &sim.machine.devices {
        let gb = d.device_bytes() as f64 / 1e9;
        // Paper: "the larger problem size corresponds to roughly 9 GB of
        // GPU memory usage ... most of which is for storing two separate
        // copies of the block data".
        assert!(
            (9.0..11.0).contains(&gb),
            "expected ~9-10 GB per GPU, accounted {gb:.2} GB"
        );
    }
}

#[test]
fn small_problem_footprint_is_megabytes() {
    // Paper: the 192^3-per-node size corresponds to ~18 MB.
    let mut cfg = JacobiConfig::new(MachineConfig::summit(1), Dims::cube(192));
    cfg.comm = CommMode::GpuAware;
    cfg.iters = 1;
    cfg.warmup = 0;
    let (sim, _ids, _sh) = charm::build(cfg);
    for d in &sim.machine.devices {
        let mb = d.device_bytes() as f64 / 1e6;
        assert!(
            (15.0..30.0).contains(&mb),
            "expected ~18-25 MB, got {mb:.1} MB"
        );
    }
}

#[test]
#[should_panic(expected = "over capacity")]
fn oversubscribed_gpu_memory_panics() {
    // 2560^3 per node over 6 GPUs needs ~45 GB per GPU — far over the
    // 16 GB V100.
    let mut cfg = JacobiConfig::new(MachineConfig::summit(1), Dims::cube(2560));
    cfg.comm = CommMode::GpuAware;
    cfg.iters = 1;
    cfg.warmup = 0;
    let _ = charm::build(cfg);
}

#[test]
fn odf_adds_only_ghost_overhead() {
    // Higher ODF means more blocks with more ghost layers, but the
    // interior volume is constant: memory grows only modestly.
    let build = |odf| {
        let mut cfg = JacobiConfig::new(MachineConfig::summit(1), Dims::cube(768));
        cfg.comm = CommMode::GpuAware;
        cfg.odf = odf;
        cfg.iters = 1;
        cfg.warmup = 0;
        let (sim, _, _) = charm::build(cfg);
        sim.machine
            .devices
            .iter()
            .map(|d| d.device_bytes())
            .sum::<u64>()
    };
    let odf1 = build(1);
    let odf8 = build(8);
    assert!(odf8 > odf1, "more blocks, more ghosts");
    assert!(
        odf8 < odf1 * 13 / 10,
        "ghost overhead should stay below 30%: {odf1} -> {odf8}"
    );
}
