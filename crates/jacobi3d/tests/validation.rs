//! Functional validation: every Jacobi3D variant must produce the exact
//! same field as the sequential reference solver, bit for bit.

use gaat_jacobi3d::{charm, mpi_app, CommMode, Dims, Fusion, JacobiConfig, SyncMode};
use gaat_rt::MachineConfig;

fn base_cfg(nodes: usize, pes: usize, global: usize) -> JacobiConfig {
    let mut cfg = JacobiConfig::new(MachineConfig::validation(nodes, pes), Dims::cube(global));
    cfg.iters = 5;
    cfg.warmup = 2;
    cfg
}

fn validate_charm(cfg: JacobiConfig) -> f64 {
    cfg.validate();
    let (mut sim, ids, sh) = charm::build(cfg);
    let result = charm::run(&mut sim, &ids, &sh);
    let compared = charm::validate_against_reference(&sim, &ids, &sh);
    assert_eq!(compared, sh.cfg.global.count(), "every cell compared");
    result.checksum.expect("real buffers")
}

fn validate_mpi(cfg: JacobiConfig) -> f64 {
    cfg.validate();
    let (mut sim, ids, sh) = mpi_app::build(cfg);
    let result = mpi_app::run(&mut sim, &ids, &sh);
    let compared = mpi_app::validate_against_reference(&sim, &ids, &sh);
    assert_eq!(compared, sh.cfg.global.count());
    result.checksum.expect("real buffers")
}

#[test]
fn charm_host_staging_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::HostStaging;
    cfg.odf = 2;
    validate_charm(cfg);
}

#[test]
fn charm_gpu_aware_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 2;
    validate_charm(cfg);
}

#[test]
fn charm_original_sync_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::HostStaging;
    cfg.sync = SyncMode::Original;
    cfg.odf = 2;
    validate_charm(cfg);
}

#[test]
fn charm_original_sync_gpu_aware_matches_reference() {
    let mut cfg = base_cfg(1, 4, 12);
    cfg.comm = CommMode::GpuAware;
    cfg.sync = SyncMode::Original;
    validate_charm(cfg);
}

#[test]
fn charm_fusion_strategies_match_reference() {
    for fusion in [Fusion::A, Fusion::B, Fusion::C] {
        let mut cfg = base_cfg(2, 2, 12);
        cfg.comm = CommMode::GpuAware;
        cfg.fusion = fusion;
        cfg.odf = 2;
        validate_charm(cfg);
    }
}

#[test]
fn charm_graphs_match_reference() {
    for fusion in [Fusion::None, Fusion::A, Fusion::B, Fusion::C] {
        let mut cfg = base_cfg(2, 2, 12);
        cfg.comm = CommMode::GpuAware;
        cfg.fusion = fusion;
        cfg.graphs = true;
        cfg.odf = 2;
        validate_charm(cfg);
    }
}

#[test]
fn charm_high_odf_matches_reference() {
    let mut cfg = base_cfg(1, 2, 16);
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 8; // 16 blocks over 2 PEs
    validate_charm(cfg);
}

#[test]
fn charm_single_block_no_neighbors() {
    // One chare, no halo exchange at all.
    let mut cfg = base_cfg(1, 1, 8);
    cfg.comm = CommMode::GpuAware;
    validate_charm(cfg);
}

#[test]
fn charm_large_message_pipelined_path_matches_reference() {
    // Surface-minimizing decomposition keeps faces small at test scale,
    // so instead of a huge grid we lower the device pipeline threshold to
    // force the chunked host-staging protocol onto ordinary halos.
    let mut cfg = base_cfg(2, 1, 16);
    cfg.machine.ucx.pipeline_threshold = 512; // bytes
    cfg.machine.ucx.pipeline_chunk = 512;
    cfg.comm = CommMode::GpuAware;
    cfg.iters = 3;
    cfg.warmup = 1;
    let (mut sim, ids, sh) = charm::build(cfg);
    charm::run(&mut sim, &ids, &sh);
    // The pipelined protocol must actually have been used, with several
    // chunks per message (16x16 faces = 2 KiB > 512 B).
    let stats = sim.machine.ucx.stats();
    assert!(stats.pipelined > 0, "expected pipelined transfers");
    assert!(stats.chunks >= stats.pipelined * 4, "expected chunking");
    charm::validate_against_reference(&sim, &ids, &sh);
}

#[test]
fn mpi_host_staging_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::HostStaging;
    validate_mpi(cfg);
}

#[test]
fn mpi_cuda_aware_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::GpuAware;
    validate_mpi(cfg);
}

#[test]
fn mpi_manual_overlap_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::GpuAware;
    cfg.overlap = true;
    validate_mpi(cfg);
}

#[test]
fn all_variants_agree_on_checksum() {
    let mk = || base_cfg(2, 2, 12);
    let mut checksums = Vec::new();

    let mut c = mk();
    c.comm = CommMode::HostStaging;
    checksums.push(validate_charm(c));

    let mut c = mk();
    c.comm = CommMode::GpuAware;
    c.fusion = Fusion::C;
    checksums.push(validate_charm(c));

    let mut c = mk();
    c.comm = CommMode::GpuAware;
    c.graphs = true;
    checksums.push(validate_charm(c));

    let mut c = mk();
    c.comm = CommMode::HostStaging;
    checksums.push(validate_mpi(c));

    let mut c = mk();
    c.comm = CommMode::GpuAware;
    checksums.push(validate_mpi(c));

    for w in checksums.windows(2) {
        assert_eq!(
            w[0].to_bits(),
            w[1].to_bits(),
            "checksums must be identical"
        );
    }
    assert!(checksums[0].is_finite() && checksums[0] > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut cfg = base_cfg(2, 2, 12);
        cfg.comm = CommMode::GpuAware;
        cfg.odf = 2;
        gaat_jacobi3d::run_charm(cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.time_per_iter, b.time_per_iter);
    assert_eq!(a.total, b.total);
    assert_eq!(a.entries, b.entries);
}

#[test]
fn different_seeds_vary_slightly() {
    let run = |seed| {
        let mut cfg = base_cfg(2, 2, 12);
        cfg.machine.seed = seed;
        cfg.machine.net.jitter = 0.02;
        cfg.comm = CommMode::GpuAware;
        gaat_jacobi3d::run_charm(cfg)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.total, b.total, "jitter should perturb timing");
    let ratio = a.total.as_ns() as f64 / b.total.as_ns() as f64;
    assert!((0.8..1.25).contains(&ratio), "but only slightly: {ratio}");
    // Numerics must be identical regardless of seed.
    assert_eq!(
        a.checksum.expect("real").to_bits(),
        b.checksum.expect("real").to_bits()
    );
}

#[test]
fn reduced_norm_matches_reference() {
    let mut cfg = base_cfg(2, 2, 12);
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 2;
    cfg.compute_norm = true;
    let (mut sim, ids, sh) = charm::build(cfg);
    let result = charm::run(&mut sim, &ids, &sh);
    let reduced = result.reduced_norm.expect("norm requested");
    let mut reference = gaat_jacobi3d::Reference::new(sh.cfg.global);
    reference.run(sh.cfg.total_iters());
    let want = reference.norm2();
    // The reduction sums block contributions in arrival order, so only
    // tolerance-level agreement with the reference's global order is
    // expected (f64 addition is not associative).
    let rel = ((reduced - want) / want).abs();
    assert!(rel < 1e-12, "reduced {reduced} vs reference {want}");
    // Checksum (canonical order) must agree too.
    let checksum = result.checksum.expect("real buffers");
    assert!(((checksum - want) / want).abs() < 1e-12);
}

#[test]
fn reduced_norm_in_phantom_mode_is_zero_but_flows() {
    // At scale the reduction still exercises the full path; the value is
    // just 0 because no real data exists.
    let mut cfg = JacobiConfig::new(gaat_rt::MachineConfig::summit(2), Dims::cube(96));
    cfg.comm = CommMode::GpuAware;
    cfg.odf = 2;
    cfg.iters = 3;
    cfg.warmup = 1;
    cfg.compute_norm = true;
    let r = gaat_jacobi3d::run_charm(cfg);
    assert_eq!(r.reduced_norm, Some(0.0));
}

#[test]
fn graph_update_params_strategy_matches_reference() {
    use gaat_jacobi3d::app::GraphStrategy;
    for fusion in [Fusion::None, Fusion::C] {
        let mut cfg = base_cfg(2, 2, 12);
        cfg.comm = CommMode::GpuAware;
        cfg.fusion = fusion;
        cfg.graphs = true;
        cfg.graph_strategy = GraphStrategy::UpdateParams;
        cfg.odf = 2;
        validate_charm(cfg);
    }
}
