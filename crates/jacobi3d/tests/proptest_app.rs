//! Property-based validation: arbitrary small grids, machine shapes,
//! ODFs, and feature combinations must all match the sequential reference
//! bit-for-bit. This is the strongest end-to-end correctness property in
//! the repository — it exercises decomposition remainders, boundary
//! blocks, every protocol, and the whole event pipeline at once.

use proptest::prelude::*;

use gaat_jacobi3d::{charm, mpi_app, CommMode, Dims, Fusion, JacobiConfig, SyncMode};
use gaat_rt::MachineConfig;

fn any_fusion() -> impl Strategy<Value = Fusion> {
    prop_oneof![
        Just(Fusion::None),
        Just(Fusion::A),
        Just(Fusion::B),
        Just(Fusion::C),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full simulation + reference solve
        ..ProptestConfig::default()
    })]

    #[test]
    fn charm_matches_reference_on_arbitrary_configs(
        gx in 4usize..14,
        gy in 4usize..14,
        gz in 4usize..14,
        nodes in 1usize..4,
        pes in 1usize..4,
        odf in 1usize..5,
        iters in 1usize..5,
        gpu_aware in any::<bool>(),
        original_sync in any::<bool>(),
        fusion in any_fusion(),
        graphs in any::<bool>(),
    ) {
        let mut cfg = JacobiConfig::new(
            MachineConfig::validation(nodes, pes),
            Dims::new(gx, gy, gz),
        );
        cfg.odf = odf;
        cfg.iters = iters;
        cfg.warmup = 1;
        cfg.comm = if gpu_aware { CommMode::GpuAware } else { CommMode::HostStaging };
        // Fusion/graphs only compose with GPU-aware + optimized sync.
        if gpu_aware && !original_sync {
            cfg.fusion = fusion;
            cfg.graphs = graphs;
        }
        cfg.sync = if original_sync { SyncMode::Original } else { SyncMode::Optimized };
        cfg.validate();
        let (mut sim, ids, sh) = charm::build(cfg);
        charm::run(&mut sim, &ids, &sh);
        let compared = charm::validate_against_reference(&sim, &ids, &sh);
        prop_assert_eq!(compared, gx * gy * gz);
    }

    #[test]
    fn mpi_matches_reference_on_arbitrary_configs(
        g in 4usize..14,
        nodes in 1usize..4,
        pes in 1usize..4,
        vr in 1usize..4,
        iters in 1usize..5,
        gpu_aware in any::<bool>(),
        overlap in any::<bool>(),
    ) {
        let mut cfg = JacobiConfig::new(
            MachineConfig::validation(nodes, pes),
            Dims::cube(g),
        );
        cfg.iters = iters;
        cfg.warmup = 1;
        cfg.virtual_ranks = vr;
        cfg.overlap = overlap;
        cfg.comm = if gpu_aware { CommMode::GpuAware } else { CommMode::HostStaging };
        cfg.validate();
        let (mut sim, ids, sh) = mpi_app::build(cfg);
        mpi_app::run(&mut sim, &ids, &sh);
        let compared = mpi_app::validate_against_reference(&sim, &ids, &sh);
        prop_assert_eq!(compared, g * g * g);
    }
}
