//! Fault-injection validation for the task-runtime Jacobi3D.
//!
//! With the reliable transport on, deterministic message loss must be
//! invisible to the numerics: the solver converges to the exact same
//! field as the fault-free run (and the sequential reference), only
//! later. Without retries, loss stalls the iteration. A PE failure is
//! recovered from buddy checkpoints and still matches the reference
//! bit for bit.

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat_rt::{MachineConfig, Simulation};
use gaat_sim::{FaultPlan, PeFault, SimTime};

fn faulty_cfg(comm: CommMode, drop_prob: f64, retries: bool) -> JacobiConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = retries;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(8));
    cfg.iters = 4;
    cfg.warmup = 1;
    cfg.odf = 2;
    cfg.comm = comm;
    cfg
}

fn assert_quiesced(sim: &Simulation) {
    assert_eq!(sim.machine.ucx.in_flight(), 0, "transfers leak");
    assert_eq!(sim.machine.ucx.stashed(), 0, "tokens/timers leak");
}

#[test]
fn lossy_host_staging_converges_bit_identically() {
    let cfg = faulty_cfg(CommMode::HostStaging, 0.1, true);
    let (mut sim, ids, sh) = charm::build(cfg);
    charm::run(&mut sim, &ids, &sh);
    let st = sim.machine.ucx.stats();
    assert!(st.retransmits > 0, "the drop plan should force retransmits");
    assert_eq!(st.peers_dead, 0, "no peer should be declared dead");
    assert_quiesced(&sim);
    charm::validate_against_reference(&sim, &ids, &sh);
}

#[test]
fn lossy_gpu_aware_converges_bit_identically() {
    let cfg = faulty_cfg(CommMode::GpuAware, 0.02, true);
    let (mut sim, ids, sh) = charm::build(cfg);
    charm::run(&mut sim, &ids, &sh);
    let st = sim.machine.ucx.stats();
    assert!(st.retransmits > 0, "the drop plan should force retransmits");
    assert_quiesced(&sim);
    charm::validate_against_reference(&sim, &ids, &sh);
}

#[test]
fn lossy_run_costs_time_but_not_correctness() {
    let clean = faulty_cfg(CommMode::HostStaging, 0.0, true);
    let lossy = faulty_cfg(CommMode::HostStaging, 0.1, true);
    let (mut s0, ids0, sh0) = charm::build(clean);
    let r0 = charm::run(&mut s0, &ids0, &sh0);
    let (mut s1, ids1, sh1) = charm::build(lossy);
    let r1 = charm::run(&mut s1, &ids1, &sh1);
    assert_eq!(r0.checksum, r1.checksum, "loss must not change the field");
    assert!(
        r1.total > r0.total,
        "retransmits cost time: {} vs {}",
        r1.total,
        r0.total
    );
}

#[test]
fn lossy_without_retries_fails_to_complete() {
    let cfg = faulty_cfg(CommMode::HostStaging, 0.05, false);
    let (mut sim, ids, _sh) = charm::build(cfg);
    {
        let Simulation { sim, machine, .. } = &mut sim;
        machine.broadcast(sim, &ids, charm::E_START, 0);
    }
    sim.run();
    let unfinished = ids
        .iter()
        .filter(|&&id| {
            sim.machine
                .chare_as::<charm::BlockChare>(id)
                .done_at
                .is_none()
        })
        .count();
    assert!(
        unfinished > 0,
        "silent message loss must stall at least one block"
    );
}

#[test]
fn pe_failure_recovers_from_checkpoints() {
    // Fault-free pass to learn the completion time, then kill a PE at
    // 60% of it — past the first full checkpoint wave.
    let mut cfg = faulty_cfg(CommMode::HostStaging, 0.0, true);
    cfg.checkpoint_every = 2;
    let (mut sim0, ids0, sh0) = charm::build(cfg.clone());
    let r0 = charm::run(&mut sim0, &ids0, &sh0);
    assert!(sim0.machine.stats().checkpoints_stored > 0);

    cfg.machine.faults.pe_failures = vec![PeFault {
        at: SimTime::ZERO + r0.total.mul_f64(0.6),
        pe: 1,
    }];
    let (mut sim, ids, sh) = charm::build(cfg);
    let r = charm::run(&mut sim, &ids, &sh);
    let st = sim.machine.stats();
    assert_eq!(st.pe_failures, 1);
    assert_eq!(st.recoveries, 1);
    assert_eq!(st.chares_restored as usize, ids.len());
    assert!(!sim.machine.pe_alive(1));
    assert!(sim.machine.incarnation() > 0);
    // Redoing rolled-back iterations costs time.
    assert!(r.total > r0.total, "{} vs {}", r.total, r0.total);
    assert_quiesced(&sim);
    charm::validate_against_reference(&sim, &ids, &sh);
}

#[test]
fn same_fault_seed_replays_identically() {
    let fingerprint = || {
        let cfg = faulty_cfg(CommMode::HostStaging, 0.1, true);
        let (mut sim, ids, sh) = charm::build(cfg);
        let r = charm::run(&mut sim, &ids, &sh);
        let st = sim.machine.ucx.stats();
        (
            r.total,
            r.checksum,
            r.entries,
            st.retransmits,
            st.duplicates,
        )
    };
    assert_eq!(fingerprint(), fingerprint(), "same seed, same trajectory");
}
