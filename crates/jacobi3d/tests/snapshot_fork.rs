//! World snapshot/fork validation at the full-runtime level.
//!
//! The sweep engine's prefix memoization rests on one claim: a world
//! restored from a [`Simulation::snapshot`] and driven to quiescence is
//! bit-identical to a world that ran the same scenario fresh from
//! `t = 0`. These tests pin that claim for the Jacobi3D app across the
//! late-diverging fault axes the memoizer actually forks on
//! (drop probability and fault seed past an onset instant), including
//! restoring one snapshot several times.

use gaat_jacobi3d::{charm, CommMode, Dims, JacobiConfig, RunResult};
use gaat_rt::{MachineConfig, Simulation};
use gaat_sim::{FaultPlan, SimDuration, SimTime};

fn onset_cfg(drop_prob: f64, onset_us: u64, retries: bool, fault_seed: u64) -> JacobiConfig {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: fault_seed,
        drop_prob,
        onset: SimTime::ZERO + SimDuration::from_us(onset_us),
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = retries;
    let mut cfg = JacobiConfig::new(machine, Dims::cube(8));
    cfg.iters = 4;
    cfg.warmup = 1;
    cfg.odf = 2;
    cfg.comm = CommMode::HostStaging;
    cfg
}

/// Everything a forked branch must reproduce bit for bit.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Option<RunResult>,
    stalled: usize,
    end_ns: u64,
    net_messages: u64,
    net_drops: u64,
    net_retransmits: u64,
    ucx_retransmits: u64,
    ucx_timeouts: u64,
    entries: u64,
}

fn outcome(sim: &Simulation, result: Option<RunResult>, stalled: usize) -> Outcome {
    let net = sim.machine.fabric.stats();
    let ucx = sim.machine.ucx.stats();
    Outcome {
        result,
        stalled,
        end_ns: sim.now().as_ns(),
        net_messages: net.messages,
        net_drops: net.drops,
        net_retransmits: net.retransmits,
        ucx_retransmits: ucx.retransmits,
        ucx_timeouts: ucx.timeouts,
        entries: sim.machine.stats().entries,
    }
}

fn run_fresh(cfg: JacobiConfig) -> Outcome {
    let (mut sim, ids, sh) = charm::build(cfg);
    let (res, stalled) = charm::run_tolerant(&mut sim, &ids, &sh);
    outcome(&sim, res, stalled)
}

/// Build under `branch0`, pause just before the shared onset, snapshot,
/// let branch0 finish live, then restore once per other branch with its
/// fault plan swapped in. Returns one outcome per branch, in order.
fn run_forked(branches: &[JacobiConfig], onset: SimTime) -> Vec<Outcome> {
    let (mut sim, ids, sh) = charm::build(branches[0].clone());
    charm::start(&mut sim, &ids);
    sim.run_until(onset - SimDuration::from_ns(1));
    let snap = sim.snapshot().expect("closure-free world must fork");
    let mut out = Vec::new();
    let (res, stalled) = charm::finish_tolerant(&mut sim, &ids, &sh);
    out.push(outcome(&sim, res, stalled));
    for cfg in &branches[1..] {
        sim.restore(&snap);
        sim.set_stochastic_faults(cfg.machine.faults.clone());
        let (res, stalled) = charm::finish_tolerant(&mut sim, &ids, &sh);
        out.push(outcome(&sim, res, stalled));
    }
    out
}

#[test]
fn forked_drop_rate_branches_match_fresh_runs() {
    // Same machine, same fault seed, same onset; the branches differ
    // only in post-onset drop probability — the canonical late axis.
    let onset = SimTime::ZERO + SimDuration::from_us(40);
    let branches = [
        onset_cfg(0.08, 40, true, 9),
        onset_cfg(0.20, 40, true, 9),
        onset_cfg(0.0, 40, true, 9),
    ];
    let fresh: Vec<Outcome> = branches.iter().map(|c| run_fresh(c.clone())).collect();
    let forked = run_forked(&branches, onset);
    assert_eq!(forked, fresh);
    // The divergence must be real: the lossy branches dropped messages
    // (onset landed mid-run) and differ from the clean branch.
    assert!(fresh[0].net_drops > 0, "onset must land before quiescence");
    assert!(fresh[1].net_drops > fresh[0].net_drops);
    assert_eq!(fresh[2].net_drops, 0);
    assert_ne!(fresh[0].end_ns, fresh[2].end_ns);
}

#[test]
fn one_snapshot_restores_many_times() {
    let onset = SimTime::ZERO + SimDuration::from_us(40);
    let b = onset_cfg(0.15, 40, true, 7);
    // Branch list repeats the same plan: every restore of the one
    // snapshot must reproduce the same bits.
    let branches = [b.clone(), b.clone(), b];
    let forked = run_forked(&branches, onset);
    assert_eq!(forked[1], forked[0]);
    assert_eq!(forked[2], forked[0]);
}

#[test]
fn forked_fault_seed_branches_match_with_retries_off() {
    // With the reliable transport off the fault seed feeds nothing
    // before the onset (fates are onset-gated, no retry jitter draws),
    // so seed becomes a valid late axis. Drops then stall blocks; the
    // stalled counts and drain times must still match fresh runs.
    let onset = SimTime::ZERO + SimDuration::from_us(30);
    let branches = [
        onset_cfg(0.05, 30, false, 1),
        onset_cfg(0.05, 30, false, 2),
        onset_cfg(0.05, 30, false, 3),
    ];
    let fresh: Vec<Outcome> = branches.iter().map(|c| run_fresh(c.clone())).collect();
    let forked = run_forked(&branches, onset);
    assert_eq!(forked, fresh);
    assert!(
        fresh.iter().any(|o| o.stalled > 0),
        "some seed should stall a block at this drop rate"
    );
}

#[test]
fn snapshot_past_quiescence_degrades_gracefully() {
    // An onset beyond the makespan: run_until drains the queue before
    // the pause instant, the snapshot captures the quiesced world, and
    // every branch — whatever its post-onset plan — equals the
    // fault-free run, exactly as fresh execution would.
    let onset = SimTime::ZERO + SimDuration::from_ms(50);
    let branches = [
        onset_cfg(0.3, 50_000, true, 4),
        onset_cfg(0.7, 50_000, true, 4),
    ];
    let fresh: Vec<Outcome> = branches.iter().map(|c| run_fresh(c.clone())).collect();
    let forked = run_forked(&branches, onset);
    assert_eq!(forked, fresh);
    assert_eq!(fresh[0].net_drops, 0);
    assert_eq!(fresh[0], fresh[1]);
}
