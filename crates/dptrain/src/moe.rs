//! MoE-style dispatch/combine alltoall proxy.
//!
//! Every rank holds `tokens` tokens of `hidden` elements and routes
//! each token to an expert rank with a deterministic, *skewed*
//! distribution: with probability `hot_frac` a token goes to one of the
//! first `hot_experts` ranks, otherwise uniformly anywhere. A round is
//! dispatch (variable alltoall of token blocks), an expert kernel
//! (elementwise transform priced on the GPU), and combine (the
//! transposed variable alltoall bringing every token home).
//!
//! The skew concentrates incast on the hot ranks' nodes, which makes
//! rank placement matter under spine contention — the congestion
//! ablation's measurable quantity — unlike a uniform alltoall whose
//! traffic matrix is placement-invariant.

use std::sync::Arc;

use gaat_coll::member::{CollEntries, CollMember, MemberEvent, MemberStats};
use gaat_coll::plan::{alltoallv_plan, place_rank, CollPlan, RankPlacement};
use gaat_coll::reference::mix64;
use gaat_gpu::Space;
use gaat_rt::{
    BufRange, BufferId, Callback, Chare, ChareId, Ctx, EntryId, Envelope, KernelSpec,
    MachineConfig, Op, RunOutcome, Simulation, StreamId,
};
use gaat_sim::{SimDuration, SimTime};

/// Begin execution.
pub const E_START: EntryId = EntryId(0);
/// The expert kernel retired.
pub const E_EXPERT: EntryId = EntryId(1);
/// Member event: receive landed (refnum = member<<16 | lane).
pub const E_RECV: EntryId = EntryId(2);
/// Member event: send buffer reusable.
pub const E_SENT: EntryId = EntryId(3);
/// Member event: reduction / local-copy kernel retired.
pub const E_REDUCED: EntryId = EntryId(4);

const DISPATCH: u64 = 0;
const COMBINE: u64 = 1 << 16;

/// Experiment description.
#[derive(Debug, Clone)]
pub struct MoeConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// Tokens held by each rank.
    pub tokens: usize,
    /// Elements per token.
    pub hidden: usize,
    /// How many low-numbered ranks are "hot" experts.
    pub hot_experts: usize,
    /// Probability a token routes to a hot expert.
    pub hot_frac: f64,
    /// Routing seed.
    pub seed: u64,
    /// Pipelining chunk for the alltoalls.
    pub chunk: usize,
    /// Timed rounds.
    pub rounds: usize,
    /// Warm-up rounds excluded from timing.
    pub warmup: usize,
    /// Rank→PE mapping.
    pub placement: RankPlacement,
    /// Participant count; 0 means one rank per PE.
    pub ranks: usize,
}

impl MoeConfig {
    /// Defaults: 2 hot experts drawing 50% of tokens, one timed round.
    pub fn new(machine: MachineConfig, tokens: usize, hidden: usize) -> Self {
        MoeConfig {
            machine,
            tokens,
            hidden,
            hot_experts: 2,
            hot_frac: 0.5,
            seed: 0x1337,
            chunk: 1 << 16,
            rounds: 1,
            warmup: 0,
            placement: RankPlacement::Packed,
            ranks: 0,
        }
    }

    /// Effective participant count.
    pub fn effective_ranks(&self) -> usize {
        if self.ranks == 0 {
            self.machine.total_pes()
        } else {
            self.ranks
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct MoeResult {
    /// Mean time per round (post-warm-up).
    pub time_per_round: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
    /// Merged dispatch-alltoall counters.
    pub dispatch_stats: MemberStats,
    /// Merged combine-alltoall counters.
    pub combine_stats: MemberStats,
}

/// Shared run parameters.
#[derive(Debug)]
pub struct MoeShared {
    /// The experiment.
    pub cfg: MoeConfig,
    /// Participant count.
    pub ranks: usize,
    /// `counts[r][e]`: tokens rank `r` routes to expert `e`.
    pub counts: Vec<Vec<usize>>,
    /// Dispatch schedule (counts × hidden elements).
    pub dispatch: CollPlan,
    /// Combine schedule (the transpose).
    pub combine: CollPlan,
}

/// The expert a token routes to. Deterministic in (seed, rank, token).
pub fn expert_of(
    seed: u64,
    ranks: usize,
    hot_experts: usize,
    hot_frac: f64,
    rank: usize,
    token: usize,
) -> usize {
    let h = mix64(seed ^ ((rank as u64) << 32) ^ ((token as u64) << 1) ^ 0x5eed);
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
    let h2 = mix64(h);
    let hot = hot_experts.clamp(1, ranks);
    if frac < hot_frac {
        (h2 % hot as u64) as usize
    } else {
        (h2 % ranks as u64) as usize
    }
}

/// The full routing matrix: `counts[r][e]` tokens from `r` to expert `e`.
pub fn routing_counts(cfg: &MoeConfig, ranks: usize) -> Vec<Vec<usize>> {
    let mut counts = vec![vec![0usize; ranks]; ranks];
    for r in 0..ranks {
        for t in 0..cfg.tokens {
            counts[r][expert_of(cfg.seed, ranks, cfg.hot_experts, cfg.hot_frac, r, t)] += 1;
        }
    }
    counts
}

/// Element `k` of token `t` held by `rank`.
pub fn token_value(rank: usize, t: usize, k: usize) -> f64 {
    let h = mix64(((rank as u64) << 40) ^ ((t as u64) << 20) ^ k as u64 ^ 0x70ce);
    1.0 + (h & 0xf_ffff) as f64 / 1_048_576.0
}

/// The expert's elementwise transform (expert `e` applies its own
/// scale and bias).
pub fn expert_transform(x: f64, e: usize) -> f64 {
    x * (1.0 + 0.0625 * e as f64) + 0.03125 * (e as f64 + 1.0)
}

/// Rank `r`'s dispatch send buffer: tokens grouped by destination
/// expert (ascending), tokens in ascending order within a group.
pub fn dispatch_layout(cfg: &MoeConfig, ranks: usize, r: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(cfg.tokens * cfg.hidden);
    for e in 0..ranks {
        for t in 0..cfg.tokens {
            if expert_of(cfg.seed, ranks, cfg.hot_experts, cfg.hot_frac, r, t) == e {
                for k in 0..cfg.hidden {
                    v.push(token_value(r, t, k));
                }
            }
        }
    }
    v
}

/// Rank `r`'s expected combine output: each of its tokens transformed
/// by the expert it was routed to, grouped by expert (the combine
/// alltoall's arrival layout).
pub fn reference_output(cfg: &MoeConfig, ranks: usize, r: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(cfg.tokens * cfg.hidden);
    for e in 0..ranks {
        for t in 0..cfg.tokens {
            if expert_of(cfg.seed, ranks, cfg.hot_experts, cfg.hot_frac, r, t) == e {
                for k in 0..cfg.hidden {
                    v.push(expert_transform(token_value(r, t, k), e));
                }
            }
        }
    }
    v
}

/// One MoE participant: the local shard's dispatcher and its expert.
pub struct MoeChare {
    sh: Arc<MoeShared>,
    rank: usize,
    disp_out: BufferId,
    exp_out: BufferId,
    expert_elems: usize,
    stream: StreamId,
    dispatch: CollMember,
    combine: CollMember,
    round: usize,
    /// Completion time of the warm-up rounds.
    pub warm_at: Option<SimTime>,
    /// Completion time of the final round.
    pub done_at: Option<SimTime>,
    /// The combine output buffer (for validation).
    pub comb_out: BufferId,
}

impl MoeChare {
    fn total(&self) -> usize {
        self.sh.cfg.rounds + self.sh.cfg.warmup
    }

    fn start_round(&mut self, ctx: &mut Ctx<'_>) {
        while self.round < self.total() {
            if !self.dispatch.begin(ctx) {
                return;
            }
            if !self.run_expert_then_combine(ctx) {
                return;
            }
        }
    }

    /// Dispatch finished: price the expert on the GPU, then combine.
    /// Returns `true` when the whole round completed synchronously.
    fn on_dispatch_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.run_expert_then_combine(ctx) {
            self.start_round(ctx);
        }
    }

    fn run_expert_then_combine(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.expert_elems == 0 {
            // No tokens arrived; skip the kernel, go straight to combine.
            return self.start_combine(ctx);
        }
        let t = ctx.machine.cfg.gpu.clone();
        let (src, dst, len, e) = (self.disp_out, self.exp_out, self.expert_elems, self.rank);
        // Read + math + write per element.
        let work = t.membound_work(len as u64 * 16);
        let spec = KernelSpec::with_func("moe_expert", work, move |m| {
            expert_kernel(m, src, dst, len, e);
        });
        ctx.launch(self.stream, Op::kernel(spec));
        let me = ctx.me();
        ctx.hapi(self.stream, Callback::to(me, E_EXPERT));
        false
    }

    /// Returns `true` when combine completed synchronously.
    fn start_combine(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.combine.begin(ctx) {
            self.advance(ctx);
            return true;
        }
        false
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        if self.round == self.sh.cfg.warmup {
            self.warm_at = Some(ctx.start_time());
        }
        if self.round == self.total() {
            self.done_at = Some(ctx.start_time());
        }
    }
}

impl Chare for MoeChare {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let ev = match env.entry {
            E_START => {
                self.start_round(ctx);
                return;
            }
            E_EXPERT => {
                if self.start_combine(ctx) {
                    self.start_round(ctx);
                }
                return;
            }
            E_RECV => MemberEvent::Recv,
            E_SENT => MemberEvent::Sent,
            E_REDUCED => MemberEvent::Reduced,
            other => panic!("unknown entry {other:?}"),
        };
        let which = env.refnum & !gaat_coll::member::LANE_MASK;
        let done = if which == DISPATCH {
            self.dispatch.on_event(ctx, ev, env.refnum)
        } else {
            self.combine.on_event(ctx, ev, env.refnum)
        };
        if done {
            if which == DISPATCH {
                self.on_dispatch_done(ctx);
            } else {
                self.advance(ctx);
                self.start_round(ctx);
            }
        }
    }
}

/// Functional expert kernel body. Phantom-safe.
pub fn expert_kernel(
    m: &mut gaat_gpu::MemoryPool,
    src: BufferId,
    dst: BufferId,
    len: usize,
    e: usize,
) {
    let Some(vals) = m.read(BufRange::new(src, 0, len)) else {
        return;
    };
    let Some(d) = m.get_mut(dst).as_mut_slice() else {
        return;
    };
    for (i, x) in vals.iter().enumerate() {
        d[i] = expert_transform(*x, e);
    }
}

/// Build the MoE simulation.
pub fn build_moe(cfg: MoeConfig) -> (Simulation, Vec<ChareId>, Arc<MoeShared>) {
    let sim = Simulation::new(cfg.machine.clone());
    build_moe_in(sim, cfg)
}

/// Like [`build_moe`], but constructing the application inside a
/// caller-provided simulation (e.g. one prepared by a
/// `gaat_rt::WorldSlot`, recycling the engine's allocations across a
/// sweep of scenarios). Must have been built from `cfg.machine`.
pub fn build_moe_in(
    mut sim: Simulation,
    cfg: MoeConfig,
) -> (Simulation, Vec<ChareId>, Arc<MoeShared>) {
    assert!(cfg.rounds > 0 && cfg.hidden > 0);
    assert!((0.0..=1.0).contains(&cfg.hot_frac));
    debug_assert_eq!(sim.machine.cfg.total_pes(), cfg.machine.total_pes());
    let ranks = cfg.effective_ranks();
    let counts = routing_counts(&cfg, ranks);
    let elems: Vec<Vec<usize>> = counts
        .iter()
        .map(|row| row.iter().map(|&c| c * cfg.hidden).collect())
        .collect();
    let transposed: Vec<Vec<usize>> = (0..ranks)
        .map(|e| (0..ranks).map(|r| elems[r][e]).collect())
        .collect();
    let dispatch = alltoallv_plan(&elems, cfg.chunk);
    let combine = alltoallv_plan(&transposed, cfg.chunk);
    let real = cfg.machine.real_buffers;
    let sh = Arc::new(MoeShared {
        cfg: cfg.clone(),
        ranks,
        counts,
        dispatch,
        combine,
    });
    let base = sim.machine.chare_count();
    let ids: Vec<ChareId> = (0..ranks).map(|i| ChareId(base + i)).collect();
    let entries = CollEntries {
        recv: E_RECV,
        sent: E_SENT,
        reduced: E_REDUCED,
    };
    #[allow(clippy::needless_range_loop)]
    for r in 0..ranks {
        let pe = place_rank(
            r,
            ranks,
            cfg.machine.nodes,
            cfg.machine.pes_per_node,
            cfg.placement,
        );
        let dev = sim.machine.pe_device(pe);
        let device = &mut sim.machine.devices[dev.0];
        let in_len = sh.dispatch.in_elems[r].max(1);
        let expert_elems = sh.dispatch.out_elems[r];
        let disp_in = device.mem.alloc(Space::Device, in_len, real);
        let disp_out = device.mem.alloc(Space::Device, expert_elems.max(1), real);
        let exp_out = device.mem.alloc(Space::Device, expert_elems.max(1), real);
        let comb_out = device
            .mem
            .alloc(Space::Device, sh.combine.out_elems[r].max(1), real);
        let stream = device.create_stream(2);
        let dispatch = CollMember::new(
            r,
            sh.dispatch.members[r].clone(),
            true,
            disp_in,
            0,
            Some(disp_out),
            0,
            stream,
            entries,
            DISPATCH,
            device,
            real,
        );
        let combine = CollMember::new(
            r,
            sh.combine.members[r].clone(),
            true,
            exp_out,
            0,
            Some(comb_out),
            0,
            stream,
            entries,
            COMBINE,
            device,
            real,
        );
        if real && sh.dispatch.in_elems[r] > 0 {
            let vals = dispatch_layout(&cfg, ranks, r);
            device
                .mem
                .write(BufRange::new(disp_in, 0, vals.len()), &vals);
        }
        device.assert_memory_fits();
        let chare = MoeChare {
            sh: sh.clone(),
            rank: r,
            disp_out,
            exp_out,
            expert_elems,
            stream,
            dispatch,
            combine,
            round: 0,
            warm_at: if cfg.warmup == 0 {
                Some(SimTime::ZERO)
            } else {
                None
            },
            done_at: None,
            comb_out,
        };
        let id = sim.machine.create_chare(pe, Box::new(chare));
        assert_eq!(id, ids[r]);
    }
    gaat_coll::member::wire_members(&mut sim.machine, &ids, &sh.dispatch, |any| {
        &mut any.downcast_mut::<MoeChare>().expect("moe chare").dispatch
    });
    gaat_coll::member::wire_members(&mut sim.machine, &ids, &sh.combine, |any| {
        &mut any.downcast_mut::<MoeChare>().expect("moe chare").combine
    });
    (sim, ids, sh)
}

/// Run to completion and collect results.
pub fn run_moe(sim: &mut Simulation, ids: &[ChareId], sh: &MoeShared) -> MoeResult {
    {
        let Simulation { sim, machine, .. } = sim;
        machine.broadcast(sim, ids, E_START, 0);
    }
    assert_eq!(sim.run(), RunOutcome::Drained, "MoE round should quiesce");
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    let mut dispatch_stats = MemberStats::default();
    let mut combine_stats = MemberStats::default();
    for &id in ids {
        let c = sim.machine.chare_as::<MoeChare>(id);
        warm = warm.max(c.warm_at.expect("warmed"));
        done = done.max(c.done_at.expect("finished"));
        dispatch_stats.merge(&c.dispatch.stats);
        combine_stats.merge(&c.combine.stats);
    }
    MoeResult {
        time_per_round: done.since(warm) / sh.cfg.rounds as u64,
        total: done.since(SimTime::ZERO),
        dispatch_stats,
        combine_stats,
    }
}

/// Convenience: build + run.
pub fn run_moe_app(cfg: MoeConfig) -> MoeResult {
    let (mut sim, ids, sh) = build_moe(cfg);
    run_moe(&mut sim, &ids, &sh)
}

/// Compare every rank's combine output against [`reference_output`],
/// bit for bit. Returns elements compared.
pub fn validate_moe(sim: &Simulation, ids: &[ChareId], sh: &MoeShared) -> usize {
    assert!(sh.cfg.machine.real_buffers, "validation needs real buffers");
    let mut compared = 0;
    for (r, &id) in ids.iter().enumerate() {
        let want = reference_output(&sh.cfg, sh.ranks, r);
        if want.is_empty() {
            continue;
        }
        let c = sim.machine.chare_as::<MoeChare>(id);
        let pe = sim.machine.pe_of(id);
        let dev = sim.machine.pe_device(pe);
        let got = sim.machine.devices[dev.0]
            .mem
            .read(BufRange::new(c.comb_out, 0, want.len()))
            .expect("real buffers");
        assert_eq!(got, want, "MoE combine output rank {r}");
        compared += want.len();
    }
    compared
}

/// Total bytes crossing the wire or copied locally per round
/// (dispatch + combine payload).
pub fn moe_payload_bytes(sh: &MoeShared) -> u64 {
    sh.counts
        .iter()
        .flatten()
        .map(|&c| (c * sh.cfg.hidden) as u64 * 8 * 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_skewed_and_conserves_tokens() {
        let cfg = MoeConfig {
            hot_experts: 2,
            hot_frac: 0.7,
            ..MoeConfig::new(MachineConfig::validation(2, 3), 128, 4)
        };
        let counts = routing_counts(&cfg, 6);
        for row in &counts {
            assert_eq!(row.iter().sum::<usize>(), 128);
        }
        let per_expert: Vec<usize> = (0..6).map(|e| counts.iter().map(|r| r[e]).sum()).collect();
        let hot: usize = per_expert[..2].iter().sum();
        let cold: usize = per_expert[2..].iter().sum();
        assert!(
            hot > 2 * cold,
            "hot experts should dominate: {per_expert:?}"
        );
    }

    #[test]
    fn moe_round_matches_reference() {
        for (nodes, pes) in [(2usize, 3usize), (3, 1)] {
            let mut cfg = MoeConfig::new(MachineConfig::validation(nodes, pes), 17, 3);
            cfg.chunk = 7;
            cfg.hot_frac = 0.6;
            let (mut sim, ids, sh) = build_moe(cfg);
            run_moe(&mut sim, &ids, &sh);
            let n = validate_moe(&sim, &ids, &sh);
            assert!(n > 0);
        }
    }

    #[test]
    fn multi_round_moe_is_idempotent_and_validates() {
        let mut cfg = MoeConfig::new(MachineConfig::validation(2, 2), 9, 2);
        cfg.rounds = 2;
        cfg.warmup = 1;
        cfg.chunk = 5;
        let (mut sim, ids, sh) = build_moe(cfg);
        run_moe(&mut sim, &ids, &sh);
        validate_moe(&sim, &ids, &sh);
    }

    #[test]
    fn single_rank_moe_completes() {
        let cfg = MoeConfig::new(MachineConfig::validation(1, 1), 5, 2);
        let (mut sim, ids, sh) = build_moe(cfg);
        let res = run_moe(&mut sim, &ids, &sh);
        assert_eq!(res.dispatch_stats.chunks, 0, "self traffic stays local");
        validate_moe(&sim, &ids, &sh);
    }

    #[test]
    fn moe_runs_are_deterministic() {
        let mk = || {
            let mut cfg = MoeConfig::new(MachineConfig::summit(2), 512, 64);
            cfg.hot_experts = 3;
            cfg.hot_frac = 0.7;
            cfg.rounds = 2;
            cfg.warmup = 1;
            run_moe_app(cfg)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.total, b.total);
        assert_eq!(a.dispatch_stats, b.dispatch_stats);
        assert_eq!(a.combine_stats, b.combine_stats);
    }
}
