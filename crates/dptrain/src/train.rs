//! Synchronous data-parallel training proxy.
//!
//! Every rank holds an identical parameter vector `W` and computes a
//! rank-local gradient per step (a deterministic function standing in
//! for a local batch). The backward pass produces the gradient in
//! `buckets` pieces, **in reverse bucket order** like a real DDP
//! backward; with `overlap` on, each bucket's allreduce launches the
//! moment its backward kernel retires, so gradient communication rides
//! under the remaining backward compute. The step ends with an SGD
//! update `W -= lr · Σg / P`, making every rank's `W` bit-identical —
//! validated against a sequential scalar reference that replicates the
//! allreduce combine order.
//!
//! [`TrainMode::ComputeOnly`] and [`TrainMode::CommOnly`] run the same
//! step with communication (resp. compute) elided, so a harness can
//! measure overlap: `full step < compute-only + comm-only`.

use std::sync::Arc;

use gaat_coll::member::{CollEntries, CollMember, MemberEvent, MemberStats};
use gaat_coll::plan::{
    even_split, place_rank, plan, ring_lanes, tree_lanes, Algorithm, CollOp, CollPlan,
    RankPlacement,
};
use gaat_coll::reference;
use gaat_gpu::Space;
use gaat_rt::{
    BufRange, BufferId, Callback, Chare, ChareId, Ctx, EntryId, Envelope, KernelSpec,
    MachineConfig, Op, RunOutcome, Simulation, StreamId,
};
use gaat_sim::{SimDuration, SimTime};

/// Begin execution.
pub const E_START: EntryId = EntryId(0);
/// A backward bucket's kernel retired (refnum = bucket).
pub const E_BWD: EntryId = EntryId(1);
/// The SGD update kernel retired.
pub const E_UPDATED: EntryId = EntryId(2);
/// Member event: receive landed (refnum = bucket<<16 | lane).
pub const E_RECV: EntryId = EntryId(3);
/// Member event: send buffer reusable.
pub const E_SENT: EntryId = EntryId(4);
/// Member event: reduction kernel retired.
pub const E_REDUCED: EntryId = EntryId(5);

/// What part of the step to run (for overlap measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Compute and communication, overlapped per `overlap`.
    Full,
    /// Forward/backward/update kernels only; no allreduce.
    ComputeOnly,
    /// Gradient allreduces only; no kernels, no update.
    CommOnly,
}

/// Experiment description.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// Parameter (= gradient) elements per replica.
    pub params: usize,
    /// Gradient bucket count (the bucket-size knob).
    pub buckets: usize,
    /// Allreduce schedule.
    pub algorithm: Algorithm,
    /// Pipelining chunk for each bucket's allreduce.
    pub chunk: usize,
    /// Launch a bucket's allreduce as soon as its backward kernel
    /// retires (true) or only after the whole backward pass (false).
    pub overlap: bool,
    /// SGD learning rate.
    pub lr: f64,
    /// Kernel work per parameter per pass, in bytes of memory traffic
    /// (scales compute relative to communication).
    pub intensity: u64,
    /// Timed steps.
    pub steps: usize,
    /// Warm-up steps excluded from timing.
    pub warmup: usize,
    /// Rank→PE mapping.
    pub placement: RankPlacement,
    /// What to run.
    pub mode: TrainMode,
}

impl TrainConfig {
    /// Defaults: 4 buckets, ring allreduce, overlap on, 4 timed steps.
    pub fn new(machine: MachineConfig, params: usize) -> Self {
        TrainConfig {
            machine,
            params,
            buckets: 4,
            algorithm: Algorithm::Ring,
            chunk: 1 << 16,
            overlap: true,
            lr: 0.05,
            intensity: 48,
            steps: 4,
            warmup: 1,
            placement: RankPlacement::Packed,
            mode: TrainMode::Full,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Mean time per step (post-warm-up).
    pub time_per_step: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
    /// Merged allreduce counters across ranks and buckets.
    pub coll_stats: MemberStats,
}

/// Shared run parameters.
#[derive(Debug)]
pub struct TrainShared {
    /// The experiment.
    pub cfg: TrainConfig,
    /// Participant count.
    pub ranks: usize,
    /// Per-bucket allreduce plans.
    pub plans: Vec<CollPlan>,
}

/// Initial parameter value.
pub fn init_weight(i: usize) -> f64 {
    let h = reference::mix64(i as u64 ^ 0x00ab_cdef);
    1.0 + (h & 0xf_ffff) as f64 / 1_048_576.0
}

/// Rank `r`'s gradient element `i` at `step` (the stand-in for a local
/// batch's backward pass).
pub fn grad_value(rank: usize, step: usize, i: usize) -> f64 {
    let h = reference::mix64(((rank as u64) << 40) ^ ((step as u64) << 28) ^ i as u64 ^ 0x6ead);
    (h & 0xf_ffff) as f64 / 1_048_576.0 - 0.5
}

/// One data-parallel replica.
pub struct TrainChare {
    sh: Arc<TrainShared>,
    rank: usize,
    w: BufferId,
    g: BufferId,
    compute: StreamId,
    members: Vec<CollMember>,
    step: usize,
    bwd_ready: usize,
    buckets_done: usize,
    /// Completion time of the warm-up steps.
    pub warm_at: Option<SimTime>,
    /// Completion time of the final step.
    pub done_at: Option<SimTime>,
}

impl TrainChare {
    fn total(&self) -> usize {
        self.sh.cfg.steps + self.sh.cfg.warmup
    }

    fn begin_step(&mut self, ctx: &mut Ctx<'_>) {
        let cfg = &self.sh.cfg;
        self.bwd_ready = 0;
        self.buckets_done = 0;
        if cfg.mode == TrainMode::CommOnly {
            for b in 0..cfg.buckets {
                self.start_bucket(ctx, b);
            }
            return;
        }
        let me = ctx.me();
        let t = ctx.machine.cfg.gpu.clone();
        // Forward pass: timing only.
        let fwd = KernelSpec::phantom("fwd", t.membound_work(cfg.params as u64 * cfg.intensity));
        ctx.launch(self.compute, Op::kernel(fwd));
        // Backward pass: buckets retire in reverse order, each filling
        // its gradient range (functional) and firing its own HAPI.
        let (rank, step, g) = (self.rank, self.step, self.g);
        for b in (0..cfg.buckets).rev() {
            let (bo, bl) = even_split(cfg.params, cfg.buckets, b);
            let work = t.membound_work(bl as u64 * cfg.intensity * 2);
            let spec = KernelSpec::with_func("bwd", work, move |m| {
                fill_grad(m, g, bo, bl, rank, step);
            });
            ctx.launch(self.compute, Op::kernel(spec));
            ctx.hapi(self.compute, Callback::to_ref(me, E_BWD, b as u64));
        }
    }

    fn start_bucket(&mut self, ctx: &mut Ctx<'_>, b: usize) {
        if self.members[b].begin(ctx) {
            self.bucket_complete(ctx);
        }
    }

    fn bucket_complete(&mut self, ctx: &mut Ctx<'_>) {
        self.buckets_done += 1;
        if self.buckets_done == self.sh.cfg.buckets {
            match self.sh.cfg.mode {
                TrainMode::CommOnly => self.advance_step(ctx),
                _ => self.launch_update(ctx),
            }
        }
    }

    fn on_bwd(&mut self, ctx: &mut Ctx<'_>, b: usize) {
        self.bwd_ready += 1;
        match self.sh.cfg.mode {
            TrainMode::ComputeOnly => {
                if self.bwd_ready == self.sh.cfg.buckets {
                    self.launch_update(ctx);
                }
            }
            TrainMode::Full => {
                if self.sh.cfg.overlap {
                    self.start_bucket(ctx, b);
                } else if self.bwd_ready == self.sh.cfg.buckets {
                    for b2 in 0..self.sh.cfg.buckets {
                        self.start_bucket(ctx, b2);
                    }
                }
            }
            TrainMode::CommOnly => unreachable!("no backward in comm-only"),
        }
    }

    fn launch_update(&mut self, ctx: &mut Ctx<'_>) {
        let cfg = &self.sh.cfg;
        let me = ctx.me();
        let t = ctx.machine.cfg.gpu.clone();
        let (w, g, params) = (self.w, self.g, cfg.params);
        let (lr, p) = (cfg.lr, self.sh.ranks as f64);
        let work = t.membound_work(params as u64 * 24);
        let spec = KernelSpec::with_func("sgd", work, move |m| {
            sgd_update(m, w, g, params, lr, p);
        });
        ctx.launch(self.compute, Op::kernel(spec));
        ctx.hapi(self.compute, Callback::to(me, E_UPDATED));
    }

    fn advance_step(&mut self, ctx: &mut Ctx<'_>) {
        self.step += 1;
        if self.step == self.sh.cfg.warmup {
            self.warm_at = Some(ctx.start_time());
        }
        if self.step == self.total() {
            self.done_at = Some(ctx.start_time());
        } else {
            self.begin_step(ctx);
        }
    }
}

impl Chare for TrainChare {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let ev = match env.entry {
            E_START => {
                self.begin_step(ctx);
                return;
            }
            E_BWD => {
                self.on_bwd(ctx, env.refnum as usize);
                return;
            }
            E_UPDATED => {
                self.advance_step(ctx);
                return;
            }
            E_RECV => MemberEvent::Recv,
            E_SENT => MemberEvent::Sent,
            E_REDUCED => MemberEvent::Reduced,
            other => panic!("unknown entry {other:?}"),
        };
        let b = (env.refnum >> 16) as usize;
        if self.members[b].on_event(ctx, ev, env.refnum) {
            self.bucket_complete(ctx);
        }
    }
}

/// Functional backward: fill a gradient bucket. Phantom-safe.
pub fn fill_grad(
    m: &mut gaat_gpu::MemoryPool,
    g: BufferId,
    bo: usize,
    bl: usize,
    rank: usize,
    step: usize,
) {
    let Some(s) = m.get_mut(g).as_mut_slice() else {
        return;
    };
    for i in 0..bl {
        s[bo + i] = grad_value(rank, step, bo + i);
    }
}

/// Functional SGD update: `W -= lr · g / P`. Phantom-safe.
pub fn sgd_update(
    m: &mut gaat_gpu::MemoryPool,
    w: BufferId,
    g: BufferId,
    params: usize,
    lr: f64,
    p: f64,
) {
    let Some(grads) = m.read(BufRange::new(g, 0, params)) else {
        return;
    };
    let Some(s) = m.get_mut(w).as_mut_slice() else {
        return;
    };
    for i in 0..params {
        s[i] -= lr * grads[i] / p;
    }
}

/// Build the training simulation.
pub fn build_train(cfg: TrainConfig) -> (Simulation, Vec<ChareId>, Arc<TrainShared>) {
    let sim = Simulation::new(cfg.machine.clone());
    build_train_in(sim, cfg)
}

/// Like [`build_train`], but constructing the application inside a
/// caller-provided simulation (e.g. one prepared by a
/// `gaat_rt::WorldSlot`, recycling the engine's allocations across a
/// sweep of scenarios). Must have been built from `cfg.machine`.
pub fn build_train_in(
    mut sim: Simulation,
    cfg: TrainConfig,
) -> (Simulation, Vec<ChareId>, Arc<TrainShared>) {
    assert!(cfg.steps > 0 && cfg.buckets > 0 && cfg.params >= cfg.buckets);
    debug_assert_eq!(sim.machine.cfg.total_pes(), cfg.machine.total_pes());
    let ranks = cfg.machine.total_pes();
    let plans: Vec<CollPlan> = (0..cfg.buckets)
        .map(|b| {
            let (_, bl) = even_split(cfg.params, cfg.buckets, b);
            plan(CollOp::AllReduce, cfg.algorithm, ranks, bl, cfg.chunk)
        })
        .collect();
    let real = cfg.machine.real_buffers;
    let sh = Arc::new(TrainShared {
        cfg: cfg.clone(),
        ranks,
        plans,
    });
    let base = sim.machine.chare_count();
    let ids: Vec<ChareId> = (0..ranks).map(|i| ChareId(base + i)).collect();
    let entries = CollEntries {
        recv: E_RECV,
        sent: E_SENT,
        reduced: E_REDUCED,
    };
    #[allow(clippy::needless_range_loop)]
    for r in 0..ranks {
        let pe = place_rank(
            r,
            ranks,
            cfg.machine.nodes,
            cfg.machine.pes_per_node,
            cfg.placement,
        );
        let dev = sim.machine.pe_device(pe);
        let device = &mut sim.machine.devices[dev.0];
        let w = device.mem.alloc(Space::Device, cfg.params, real);
        let g = device.mem.alloc(Space::Device, cfg.params, real);
        let compute = device.create_stream(1);
        let comm = device.create_stream(2);
        let members: Vec<CollMember> = (0..cfg.buckets)
            .map(|b| {
                let (bo, _) = even_split(cfg.params, cfg.buckets, b);
                CollMember::new(
                    r,
                    sh.plans[b].members[r].clone(),
                    false,
                    g,
                    bo,
                    None,
                    0,
                    comm,
                    entries,
                    (b as u64) << 16,
                    device,
                    real,
                )
            })
            .collect();
        if real {
            let vals: Vec<f64> = (0..cfg.params).map(init_weight).collect();
            device.mem.write(BufRange::new(w, 0, cfg.params), &vals);
        }
        device.assert_memory_fits();
        let chare = TrainChare {
            sh: sh.clone(),
            rank: r,
            w,
            g,
            compute,
            members,
            step: 0,
            bwd_ready: 0,
            buckets_done: 0,
            warm_at: if cfg.warmup == 0 {
                Some(SimTime::ZERO)
            } else {
                None
            },
            done_at: None,
        };
        let id = sim.machine.create_chare(pe, Box::new(chare));
        assert_eq!(id, ids[r]);
    }
    for b in 0..cfg.buckets {
        gaat_coll::member::wire_members(&mut sim.machine, &ids, &sh.plans[b], |any| {
            &mut any
                .downcast_mut::<TrainChare>()
                .expect("train chare")
                .members[b]
        });
    }
    (sim, ids, sh)
}

/// Run to completion and collect results.
pub fn run_train(sim: &mut Simulation, ids: &[ChareId], sh: &TrainShared) -> TrainResult {
    {
        let Simulation { sim, machine, .. } = sim;
        machine.broadcast(sim, ids, E_START, 0);
    }
    assert_eq!(sim.run(), RunOutcome::Drained, "training should quiesce");
    let mut warm = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    let mut stats = MemberStats::default();
    for &id in ids {
        let c = sim.machine.chare_as::<TrainChare>(id);
        warm = warm.max(c.warm_at.expect("warmed"));
        done = done.max(c.done_at.expect("finished"));
        for m in &c.members {
            stats.merge(&m.stats);
        }
    }
    TrainResult {
        time_per_step: done.since(warm) / sh.cfg.steps as u64,
        total: done.since(SimTime::ZERO),
        coll_stats: stats,
    }
}

/// Convenience: build + run.
pub fn train(cfg: TrainConfig) -> TrainResult {
    let (mut sim, ids, sh) = build_train(cfg);
    run_train(&mut sim, &ids, &sh)
}

/// Sequential scalar reference for the final weights after a full run.
pub fn reference_weights(cfg: &TrainConfig, ranks: usize) -> Vec<f64> {
    let mut w: Vec<f64> = (0..cfg.params).map(init_weight).collect();
    let p = ranks as f64;
    for step in 0..cfg.steps + cfg.warmup {
        let mut gsum = vec![0.0; cfg.params];
        for b in 0..cfg.buckets {
            let (bo, bl) = even_split(cfg.params, cfg.buckets, b);
            let inputs: Vec<Vec<f64>> = (0..ranks)
                .map(|r| (0..bl).map(|i| grad_value(r, step, bo + i)).collect())
                .collect();
            let lanes = match cfg.algorithm {
                Algorithm::Ring => ring_lanes(bl, ranks, cfg.chunk),
                Algorithm::Tree => tree_lanes(bl, cfg.chunk),
            };
            let red = reference::allreduce(cfg.algorithm, ranks, bl, lanes, &inputs);
            gsum[bo..bo + bl].copy_from_slice(&red);
        }
        for i in 0..cfg.params {
            w[i] -= cfg.lr * gsum[i] / p;
        }
    }
    w
}

/// Compare every rank's final weights against [`reference_weights`],
/// bit for bit. Returns elements compared.
pub fn validate_train(sim: &Simulation, ids: &[ChareId], sh: &TrainShared) -> usize {
    assert!(sh.cfg.machine.real_buffers, "validation needs real buffers");
    assert_eq!(sh.cfg.mode, TrainMode::Full, "only full steps validate");
    let want = reference_weights(&sh.cfg, sh.ranks);
    let mut compared = 0;
    for &id in ids {
        let c = sim.machine.chare_as::<TrainChare>(id);
        let pe = sim.machine.pe_of(id);
        let dev = sim.machine.pe_device(pe);
        let got = sim.machine.devices[dev.0]
            .mem
            .read(BufRange::new(c.w, 0, sh.cfg.params))
            .expect("real buffers");
        assert_eq!(got, want, "rank weights diverged");
        compared += sh.cfg.params;
    }
    compared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_matches_reference_ring_and_tree() {
        for alg in [Algorithm::Ring, Algorithm::Tree] {
            for buckets in [1usize, 3] {
                let mut cfg = TrainConfig::new(MachineConfig::validation(2, 3), 50);
                cfg.algorithm = alg;
                cfg.buckets = buckets;
                cfg.chunk = 4;
                cfg.steps = 2;
                cfg.warmup = 1;
                let (mut sim, ids, sh) = build_train(cfg);
                run_train(&mut sim, &ids, &sh);
                assert_eq!(validate_train(&sim, &ids, &sh), 50 * 6, "{alg:?}/{buckets}");
            }
        }
    }

    #[test]
    fn no_overlap_also_matches_reference() {
        let mut cfg = TrainConfig::new(MachineConfig::validation(2, 2), 32);
        cfg.overlap = false;
        cfg.steps = 2;
        cfg.warmup = 0;
        cfg.chunk = 8;
        let (mut sim, ids, sh) = build_train(cfg);
        run_train(&mut sim, &ids, &sh);
        validate_train(&sim, &ids, &sh);
    }

    #[test]
    fn overlap_beats_sum_of_parts() {
        // The acceptance criterion: step time < compute time + comm time.
        let mk = |mode, overlap| {
            let mut cfg = TrainConfig::new(MachineConfig::summit(2), 1 << 20);
            cfg.mode = mode;
            cfg.overlap = overlap;
            cfg.buckets = 8;
            cfg.chunk = 1 << 14;
            cfg.steps = 3;
            cfg.warmup = 1;
            train(cfg).time_per_step
        };
        let full = mk(TrainMode::Full, true);
        let compute = mk(TrainMode::ComputeOnly, true);
        let comm = mk(TrainMode::CommOnly, true);
        assert!(
            full < compute + comm,
            "overlapped {full} should beat compute {compute} + comm {comm}"
        );
        let serial = mk(TrainMode::Full, false);
        assert!(full < serial, "overlap {full} should beat serial {serial}");
    }

    #[test]
    fn training_is_deterministic() {
        let mk = || {
            let mut cfg = TrainConfig::new(MachineConfig::summit(2), 1 << 16);
            cfg.steps = 2;
            cfg.warmup = 1;
            train(cfg)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.total, b.total);
        assert_eq!(a.coll_stats, b.coll_stats);
    }
}
