//! # gaat-dptrain — ML-traffic proxy applications
//!
//! Two workloads that put collective traffic (gaat-coll) under the same
//! runtime, GPU model, and fabric as the paper's halo-exchange apps:
//!
//! - [`train`] — synchronous data-parallel training steps: a forward
//!   kernel, backward kernels producing gradient *buckets* in reverse
//!   order, each bucket's allreduce launched as soon as its gradient is
//!   ready (DDP-style compute/communication overlap, with bucket-size
//!   and overlap knobs), then an SGD update. Validated bit-identical
//!   against a sequential scalar reference.
//! - [`moe`] — an MoE-style dispatch/combine pair of variable alltoalls
//!   with deterministically skewed expert routing, stressing placement
//!   sensitivity under spine contention.

#![warn(missing_docs)]

pub mod moe;
pub mod train;

pub use moe::{
    build_moe, build_moe_in, moe_payload_bytes, run_moe, run_moe_app, validate_moe, MoeConfig,
    MoeResult, MoeShared,
};
pub use train::{
    build_train, build_train_in, run_train, validate_train, TrainConfig, TrainMode, TrainResult,
    TrainShared,
};
