#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests, and an engine
# benchmark smoke run. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1 build"
cargo build --release

echo "==> tier-1 tests"
cargo test -q --release

echo "==> workspace tests"
cargo test -q --release --workspace

echo "==> engine benchmark (smoke)"
cargo run --release -p gaat-bench --bin engine_speed -- --smoke --out /tmp/BENCH_engine_smoke.json
echo "smoke benchmark OK"

echo "==> topology benchmark (smoke)"
# Runs the tiny congestion ablation and writes BENCH_net JSON; exits 1 if
# the FatTree single-flow sanity pin diverges >1% from Flat.
cargo run --release -p gaat-bench --bin net_speed -- --smoke --out /tmp/BENCH_net_smoke.json
# Belt and braces on top of the binary's own exit code: the recorded
# JSON must actually say the FatTree-vs-Flat sanity pin passed.
grep -q '"pass": true' /tmp/BENCH_net_smoke.json \
  || { echo "sanity_pin failed in BENCH_net_smoke.json" >&2; exit 1; }
echo "topo smoke OK"

echo "==> collectives benchmark (smoke)"
# Ring/tree allreduce and MoE alltoall sweeps; exits 1 if any collective
# diverges from its scalar reference or the training step fails to
# overlap. Merges into the same JSON net_speed wrote above.
cargo run --release -p gaat-bench --bin coll_speed -- --smoke --out /tmp/BENCH_net_smoke.json
grep -q '"sanity_pin": {"ring_allreduce": true, "tree_allreduce": true, "moe": true, "pass": true}' /tmp/BENCH_net_smoke.json \
  || { echo "coll_speed sanity pin failed in BENCH_net_smoke.json" >&2; exit 1; }
echo "coll smoke OK"

echo "==> adaptive load balancer benchmark (smoke)"
# Closed-loop LB against a degraded link plus a 4x GPU straggler: the
# adaptive policy must claw back >= 20% of the static-vs-fault-free
# makespan gap, replay bit-identically from the same seed, keep the
# Jacobi solution checksum equal across all cells, and fingerprint
# identically at sweep pool workers 1/2/4. Virtual-time pins — never
# excused by throttling.
cargo run --release -p gaat-bench --bin lb_speed -- --smoke --out /tmp/BENCH_lb_smoke.json
grep -Eq '"sanity_pin": \{"recovery": [0-9.]+, "min_recovery": 0.2, "replay_identical": true, "solutions_identical": true, "workers_match": true, "pass": true\}' /tmp/BENCH_lb_smoke.json \
  || { echo "lb_speed sanity pin failed in BENCH_lb_smoke.json" >&2; exit 1; }
echo "lb smoke OK"

echo "==> windowed parallel DES smoke (--workers 2)"
# Replays the pinned goldens through the sharded windowed engine at
# --workers 2 and 4 and requires bit-identical fingerprints against the
# single-threaded recordings. (The engine smoke above additionally
# asserts shard_churn fingerprints agree across 1/2/4 worker threads.)
cargo test -q --release --test determinism worker_counts_replay_goldens_bit_identically
echo "workers smoke OK"

echo "==> sweep-engine benchmark (smoke)"
# Batched scenario-sweep engine: fingerprints at workers 1/2/4 must
# match each other and standalone runs, and world reuse must cut mean
# per-scenario setup overhead (flagged instead of failed only when the
# ThrottleGuard suspects host thermal throttling).
cargo run --release -p gaat-bench --bin sweep_speed -- --smoke --out /tmp/BENCH_sweep_smoke.json
grep -Eq '"sanity_pin": \{"scenarios": [0-9]+, "workers_match": true, "standalone_match": true, "pass": true\}' /tmp/BENCH_sweep_smoke.json \
  || { echo "sweep_speed sanity pin failed in BENCH_sweep_smoke.json" >&2; exit 1; }
# The prefix-fork cell's correctness pin: a fork-enabled sweep of the
# fault-shaped grid must fingerprint identically to the unforked sweep
# (the fork speedup half is throttle-flagged inside the binary, but
# fingerprint equality is never excused).
grep -q '"fingerprints_match": true' /tmp/BENCH_sweep_smoke.json \
  || { echo "sweep_speed fork fingerprint pin failed in BENCH_sweep_smoke.json" >&2; exit 1; }
echo "sweep smoke OK"

echo "==> fault-injection smoke"
# Deterministic replay diff (same fault seed twice -> identical
# fingerprints) + Jacobi3D bit-identical to the reference under 1%
# message drop with the reliable transport on. Offline, sub-second.
cargo run --release -p gaat-bench --bin fault_smoke
echo "fault smoke OK"

echo "CI green"
