//! # gaat — GPU-Aware Asynchronous Tasks
//!
//! A full reproduction of *"Improving Scalability with GPU-Aware
//! Asynchronous Tasks"* (Choi, Richards, Kale — IPDPS Workshops 2022) as
//! a Rust library: an overdecomposition-driven asynchronous task runtime
//! with GPU-aware communication, running on a deterministic
//! discrete-event model of a Summit-like GPU cluster, evaluated with the
//! Jacobi3D proxy application.
//!
//! This crate is the facade: it re-exports the whole stack.
//!
//! | Layer | Crate | What it is |
//! |---|---|---|
//! | [`sim`] | `gaat-sim` | Discrete-event engine, virtual time, RNG, stats |
//! | [`gpu`] | `gaat-gpu` | GPU device model: streams, events, DMA engines, graphs |
//! | [`net`] | `gaat-net` | Interconnect: per-NIC serialization + α-β latency |
//! | [`ucx`] | `gaat-ucx` | Protocols: eager, rendezvous, GPUDirect, pipelined staging |
//! | [`rt`]  | `gaat-rt`  | **The paper's contribution**: chares, schedulers, HAPI, Channel API |
//! | [`mpi`] | `gaat-mpi` | MPI-like baseline runtime |
//! | [`jacobi3d`] | `gaat-jacobi3d` | The proxy application, all four versions |
//! | [`sweep3d`] | `gaat-sweep3d` | Wavefront-sweep proxy app (pipelined dependencies) |
//! | [`coll`] | `gaat-coll` | GPU-aware collectives: ring/tree allreduce, reduce-scatter, allgather, broadcast, alltoall |
//! | [`dptrain`] | `gaat-dptrain` | ML-traffic proxies: data-parallel training, skew-routed MoE alltoall |
//! | [`sweep`] | `gaat-sweep` | Batched scenario-sweep engine: grids, worker pool, reusable world slots, streamed JSONL |
//!
//! ## Quickstart
//!
//! ```
//! use gaat::jacobi3d::{run_charm, CommMode, Dims, JacobiConfig};
//! use gaat::rt::MachineConfig;
//!
//! // Charm-D: overdecomposed tasks + GPU-aware communication,
//! // on 2 simulated Summit nodes (12 GPUs).
//! let mut cfg = JacobiConfig::new(MachineConfig::summit(2), Dims::cube(192));
//! cfg.comm = CommMode::GpuAware;
//! cfg.odf = 4;
//! cfg.iters = 10;
//! cfg.warmup = 2;
//! let result = run_charm(cfg);
//! assert!(result.time_per_iter.as_ns() > 0);
//! ```

#![warn(missing_docs)]

pub use gaat_coll as coll;
pub use gaat_dptrain as dptrain;
pub use gaat_gpu as gpu;
pub use gaat_jacobi3d as jacobi3d;
pub use gaat_mpi as mpi;
pub use gaat_net as net;
pub use gaat_rt as rt;
pub use gaat_sim as sim;
pub use gaat_sweep as sweep;
pub use gaat_sweep3d as sweep3d;
pub use gaat_ucx as ucx;
