//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in environments with no crates.io access, so
//! `[patch.crates-io]` redirects `serde_derive` here. The derives accept
//! the same attribute grammar (`#[serde(...)]`) and expand to nothing;
//! the sibling `vendor/serde` stub provides blanket trait impls so
//! `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
