//! A small, dependency-free benchmarking harness exposing the subset of
//! the `criterion` API this workspace's `benches/` use, so `cargo bench`
//! works with no crates.io access (the workspace `[patch.crates-io]`
//! table redirects `criterion` here).
//!
//! It measures honestly (monotonic clock, warm-up, multiple samples,
//! median-of-samples reporting) but performs no statistical regression
//! analysis, HTML reporting, or command-line filtering.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, &mut f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(self, &id.0, &mut |b| f(b, input));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group; ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &full, &mut |b| f(b, input));
        self
    }

    /// End the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let per_iter;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= c.warm_up {
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }

    // Spread the measurement budget over the samples.
    let per_sample = c.measurement / c.sample_size as u32;
    let iters_per_sample =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64;
    let mut samples: Vec<Duration> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters_per_sample as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    let mut line = String::new();
    let _ = write!(
        line,
        "{id:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_dur(lo),
        fmt_dur(median),
        fmt_dur(hi),
        samples.len(),
        iters_per_sample,
    );
    println!("{line}");
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declare a group of benchmark targets, optionally with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
