//! A small, dependency-free property-testing harness exposing the subset
//! of the `proptest` API this workspace uses, so the test suite builds and
//! runs with no crates.io access (the workspace `[patch.crates-io]` table
//! redirects `proptest` here).
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) { .. } }`
//! - strategies: integer ranges (`lo..hi`, `lo..=hi`), `any::<T>()`,
//!   `Just`, tuples (arity 2–8), `prop::collection::vec`, `prop_oneof!`,
//!   `.prop_map(..)`, `.boxed()`
//! - assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Differences from real proptest: no shrinking, no failure persistence,
//! and fully deterministic case generation — the RNG stream for a test is
//! derived from the test's module path and name, so every run (and every
//! machine) sees the same cases. That fits this repository's
//! bit-determinism goals; a genuinely random seed would make tier-1 runs
//! non-reproducible.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::TestRng;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Run-loop configuration (the `cases` field is the one that matters).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection sampling is not implemented.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; ignored.
    pub max_local_rejects: u32,
    /// Accepted for compatibility; ignored.
    pub fork: bool,
    /// Accepted for compatibility; ignored.
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the offline tier-1
            // suite fast while still sweeping a meaningful sample.
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 0,
            max_local_rejects: 0,
            fork: false,
            verbose: 0,
        }
    }
}

/// FNV-1a over a string, used to derive per-test RNG streams.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a test file needs via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property body (panics, since shrinking is not
/// implemented there is no need to thread `Result` through).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test declaration macro. Each declared function becomes an
/// ordinary `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __stream = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::from_seed(
                    __stream ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
