//! Deterministic RNG for case generation: xoshiro256** seeded through
//! SplitMix64 (the same construction as `gaat-sim`'s `SimRng`, duplicated
//! here because this stand-in must stay dependency-free).

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
