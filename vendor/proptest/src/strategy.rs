//! Strategies: how test inputs are generated.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test values. Unlike real proptest there is no value
/// tree and no shrinking; `generate` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among `arms` (the engine behind `prop_oneof!`).
pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// See [`union`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values: plenty for simulation tests.
        rng.next_f64() * 2.0 - 1.0
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Vec-of-strategy, built by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
