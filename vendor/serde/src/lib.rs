//! Marker-trait stand-in for `serde`, used when building offline.
//!
//! The real `serde` is feature-gated off by default in every workspace
//! crate (`--features serde` on each crate re-enables the derives). To
//! let the *resolver* succeed with no registry access, the workspace
//! `[patch.crates-io]` table redirects `serde` to this package: the
//! traits exist and blanket-hold for every type, and the derive macros
//! expand to nothing. Nothing in the tier-1 build serializes, so the
//! stand-in is behaviourally inert; swap the patch out to get real
//! serialization.

/// Marker stand-in for `serde::Serialize`; holds for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; holds for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
