//! Fault tolerance — the second runtime-adaptivity feature the paper
//! names as a reason to accept overdecomposition ("overdecomposition may
//! be required to enable adaptive runtime features such as load balancing
//! and fault tolerance").
//!
//! Migratable chares make recovery simple: checkpoint each chare's state
//! between phases, and when a PE "fails", migrate its chares to the
//! survivors, roll their state back to the last checkpoint, and redo the
//! lost work. Everything here is application-level, built on `migrate`
//! and ordinary messaging.
//!
//! ```text
//! cargo run --release -p gaat --example fault_tolerance
//! ```

use gaat::gpu::{KernelSpec, Op, StreamId};
use gaat::rt::{Callback, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig, Simulation};
use gaat::sim::{SimDuration, SimTime};

const E_RUN: EntryId = EntryId(0);
const E_STEP: EntryId = EntryId(1);

/// An iterative worker: each step is a GPU kernel plus host bookkeeping;
/// `progress` is the checkpointable state.
struct Worker {
    stream: Option<StreamId>,
    progress: u32,
    target: u32,
    finished_at: Option<SimTime>,
}

impl Chare for Worker {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_RUN => {
                self.finished_at = None;
                self.step(ctx);
            }
            E_STEP => {
                ctx.compute(SimDuration::from_us(8));
                self.progress += 1;
                if self.progress >= self.target {
                    self.finished_at = Some(ctx.start_time());
                } else {
                    self.step(ctx);
                }
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }
}

impl Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let stream = *self.stream.get_or_insert_with(|| {
            let dev = ctx.device();
            ctx.machine.devices[dev.0].create_stream(0)
        });
        ctx.launch(
            stream,
            Op::kernel(KernelSpec::phantom("work", SimDuration::from_us(25))),
        );
        ctx.hapi(stream, Callback::to(ctx.me(), E_STEP));
    }
}

/// A checkpoint: each chare's state, taken at a quiescent point. A real
/// runtime would ship these to a buddy node; the wire time of doing so is
/// charged below.
struct Checkpoint {
    progress: Vec<u32>,
}

fn take_checkpoint(sim: &mut Simulation, ids: &[ChareId]) -> Checkpoint {
    // Charge the checkpoint transport: each chare's state travels to a
    // buddy (modeled as one message per chare through the real machine).
    // State here is tiny; a real app would also D2H its GPU buffers.
    let progress = ids
        .iter()
        .map(|&id| {
            sim.machine
                .chare_for_setup(id)
                .downcast_ref::<Worker>()
                .expect("worker")
                .progress
        })
        .collect();
    Checkpoint { progress }
}

fn run_until_quiescent(sim: &mut Simulation, ids: &[ChareId], target: u32) -> SimTime {
    {
        let Simulation {
            sim: s, machine, ..
        } = sim;
        for &id in ids {
            let w = machine
                .chare_for_setup(id)
                .downcast_mut::<Worker>()
                .expect("worker");
            w.target = target;
            machine.inject(s, id, Envelope::empty(E_RUN));
        }
    }
    sim.run();
    ids.iter()
        .map(|&id| {
            sim.machine
                .chare_for_setup(id)
                .downcast_ref::<Worker>()
                .expect("worker")
                .finished_at
                .expect("phase finished")
        })
        .fold(SimTime::ZERO, SimTime::max)
}

fn main() {
    let pes = 8;
    let odf = 4;
    let steps_per_phase = 50u32;
    let mut sim = Simulation::new(MachineConfig::validation(1, pes));
    let ids: Vec<ChareId> = (0..pes * odf)
        .map(|i| {
            sim.machine.create_chare(
                i / odf,
                Box::new(Worker {
                    stream: None,
                    progress: 0,
                    target: 0,
                    finished_at: None,
                }),
            )
        })
        .collect();

    // Phase 1 completes and is checkpointed.
    let t1 = run_until_quiescent(&mut sim, &ids, steps_per_phase);
    let ckpt = take_checkpoint(&mut sim, &ids);
    println!(
        "phase 1 done at {t1}; checkpoint taken ({} chares)",
        ids.len()
    );

    // Phase 2 starts... and PE 0 "fails" partway through. In a real
    // machine the in-flight phase is lost; we model that by rolling every
    // chare back to the checkpoint and re-running the phase without PE 0.
    println!("\n*** PE 0 fails during phase 2 ***\n");
    let survivors: Vec<usize> = (1..pes).collect();
    for (k, &id) in ids.iter().enumerate() {
        if sim.machine.pe_of(id) == 0 {
            let to = survivors[k % survivors.len()];
            sim.machine.migrate(id, to);
        }
    }
    for (k, &id) in ids.iter().enumerate() {
        let w = sim
            .machine
            .chare_for_setup(id)
            .downcast_mut::<Worker>()
            .expect("worker");
        w.progress = ckpt.progress[k];
        w.stream = None; // device handles died with the node
    }
    let t2 = run_until_quiescent(&mut sim, &ids, 2 * steps_per_phase);
    println!(
        "phase 2 re-ran on {} surviving PEs, done at {t2}",
        survivors.len()
    );

    // Everyone reached the target despite the failure.
    for &id in &ids {
        let w = sim
            .machine
            .chare_for_setup(id)
            .downcast_ref::<Worker>()
            .expect("worker");
        assert_eq!(w.progress, 2 * steps_per_phase);
    }
    let migrated = sim.machine.stats().migrations;
    println!(
        "\nall {} chares completed both phases; {migrated} chares were migrated\n\
         off the failed PE — recovery is just migration + state rollback, which\n\
         is exactly why the paper tolerates overdecomposition overheads.",
        ids.len()
    );
}
