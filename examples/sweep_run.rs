//! A thousand simulations as one request: drive the `gaat-sweep` engine
//! over a 1024-scenario Jacobi3D grid (32 seeds × 4 ODFs × 2 placements
//! × 4 drop rates) on the validation machine, streaming one JSONL record
//! per finished scenario and printing the per-group aggregate at the
//! end.
//!
//! Every worker recycles one world slot (engine reset between
//! scenarios) and shares the same pre-built topology state; outcomes
//! are bit-identical at any worker count, so feel free to vary
//! `SWEEP_WORKERS`.
//!
//! ```text
//! cargo run --release -p gaat --example sweep_run
//! SWEEP_WORKERS=4 cargo run --release -p gaat --example sweep_run
//! ```

use gaat::jacobi3d::{CommMode, Dims, Placement};
use gaat::rt::MachineConfig;
use gaat::sim::FaultPlan;
use gaat::sweep::{run_sweep, ScenarioGrid, SweepOptions, Workload};

fn main() {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob: 0.0,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;

    let mut grid = ScenarioGrid::new(machine);
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(8),
        iters: 6,
        warmup: 1,
        comm: CommMode::HostStaging,
    });
    grid.seeds = (1..=32).collect();
    grid.odfs = vec![1, 2, 4, 8];
    grid.placements = vec![Placement::Packed, Placement::RoundRobin];
    grid.drop_rates = vec![0.0, 0.01, 0.05, 0.10];
    let scenarios = grid.expand();
    assert!(scenarios.len() >= 1000, "meant to demo a big batch");

    let mut opts = SweepOptions::new();
    opts.workers = std::env::var("SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let out = std::env::temp_dir();
    opts.jsonl = Some(out.join("gaat_sweep_run.jsonl"));
    opts.csv = Some(out.join("gaat_sweep_run.csv"));

    let report = run_sweep(&scenarios, &opts).expect("sweep output files should be writable");

    println!(
        "swept {} scenarios on {} workers in {:.2}s ({:.0} scenarios/sec)",
        report.records.len(),
        report.workers,
        report.wall.as_secs_f64(),
        report.records.len() as f64 / report.wall.as_secs_f64()
    );
    println!(
        "world slots: {} prepared, {} recycled",
        report.slots.prepared, report.slots.reused
    );
    println!(
        "records: {}   aggregate: {}\n",
        opts.jsonl.as_ref().unwrap().display(),
        opts.csv.as_ref().unwrap().display()
    );
    print!("{}", report.aggregate_table());
}
