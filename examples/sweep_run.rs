//! A thousand simulations as one request: drive the `gaat-sweep` engine
//! over a 1024-scenario Jacobi3D grid (32 seeds × 4 ODFs × 2 placements
//! × 4 drop rates, faults arming mid-timeline) on the validation
//! machine, streaming one JSONL record per finished scenario and
//! printing the per-group aggregate at the end.
//!
//! Every worker recycles one world slot (engine reset between
//! scenarios) and shares the same pre-built topology state; outcomes
//! are bit-identical at any worker count, so feel free to vary
//! `SWEEP_WORKERS`. Because the drop rates only become observable at
//! the 800 us fault onset, the prefix-memoizing planner groups the four
//! drop rates of each (seed, ODF, placement) cell, executes their
//! shared prefix once, snapshots the world just before the onset, and
//! forks the remaining three scenarios from the snapshot — the
//! prefix-tree stats printed at the end show how much re-execution that
//! saved, and the records stay bit-identical to unforked runs.
//!
//! ```text
//! cargo run --release -p gaat --example sweep_run
//! SWEEP_WORKERS=4 cargo run --release -p gaat --example sweep_run
//! ```

use gaat::jacobi3d::{CommMode, Dims, Placement};
use gaat::rt::MachineConfig;
use gaat::sim::{FaultPlan, SimDuration, SimTime};
use gaat::sweep::{run_sweep, ScenarioGrid, SweepOptions, Workload};

fn main() {
    let mut machine = MachineConfig::validation(2, 2);
    machine.faults = FaultPlan {
        seed: 42,
        drop_prob: 0.0,
        ..FaultPlan::none()
    };
    machine.ucx.reliability.enabled = true;

    let mut grid = ScenarioGrid::new(machine);
    grid.workloads.push(Workload::Jacobi {
        global: Dims::cube(8),
        iters: 6,
        warmup: 1,
        comm: CommMode::HostStaging,
    });
    grid.seeds = (1..=32).collect();
    grid.odfs = vec![1, 2, 4, 8];
    grid.placements = vec![Placement::Packed, Placement::RoundRobin];
    grid.drop_rates = vec![0.0, 0.01, 0.05, 0.10];
    // Faults arm most of the way through the ~1.1 ms timeline, so each
    // drop-rate cell shares a long executed prefix (the fork point).
    grid.fault_onsets = vec![SimTime::ZERO + SimDuration::from_us(800)];
    let scenarios = grid.expand();
    assert!(scenarios.len() >= 1000, "meant to demo a big batch");

    let mut opts = SweepOptions::new();
    opts.workers = std::env::var("SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let out = std::env::temp_dir();
    opts.jsonl = Some(out.join("gaat_sweep_run.jsonl"));
    opts.csv = Some(out.join("gaat_sweep_run.csv"));

    let report = run_sweep(&scenarios, &opts).expect("sweep output files should be writable");

    println!(
        "swept {} scenarios on {} workers in {:.2}s ({:.0} scenarios/sec)",
        report.records.len(),
        report.workers,
        report.wall.as_secs_f64(),
        report.records.len() as f64 / report.wall.as_secs_f64()
    );
    println!(
        "world slots: {} prepared, {} recycled",
        report.slots.prepared, report.slots.reused
    );
    println!(
        "prefix tree: {} groups, {} snapshots taken, {} scenarios forked ({} declined), \
         snapshot {:.0} us / restore {:.0} us mean",
        report.fork.groups,
        report.fork.snapshots_taken,
        report.fork.scenarios_forked,
        report.fork.declined,
        report.fork.snapshot_ns as f64 / report.fork.snapshots_taken.max(1) as f64 / 1e3,
        report.fork.restore_ns as f64 / report.fork.scenarios_forked.max(1) as f64 / 1e3,
    );
    println!(
        "records: {}   aggregate: {}\n",
        opts.jsonl.as_ref().unwrap().display(),
        opts.csv.as_ref().unwrap().display()
    );
    print!("{}", report.aggregate_table());
}
