//! Quickstart: run the Jacobi3D proxy application in all four of the
//! paper's configurations on a small simulated cluster, verify the
//! numerics against the sequential reference, and print a comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gaat::jacobi3d::{charm, mpi_app, run_charm, run_mpi, CommMode, Dims, JacobiConfig};
use gaat::rt::MachineConfig;

fn main() {
    // ----- Part 1: functional validation on a small real-data grid -----
    println!("validating numerics on a 16^3 grid (real buffers, 2 nodes x 2 GPUs)...");
    let mut vcfg = JacobiConfig::new(MachineConfig::validation(2, 2), Dims::cube(16));
    vcfg.comm = CommMode::GpuAware;
    vcfg.odf = 2;
    vcfg.iters = 5;
    vcfg.warmup = 2;
    let (mut sim, ids, sh) = charm::build(vcfg.clone());
    charm::run(&mut sim, &ids, &sh);
    let cells = charm::validate_against_reference(&sim, &ids, &sh);
    println!("  Charm-D: {cells} cells bit-identical to the reference solver");

    vcfg.odf = 1;
    let (mut sim, ids, sh) = mpi_app::build(vcfg);
    mpi_app::run(&mut sim, &ids, &sh);
    let cells = mpi_app::validate_against_reference(&sim, &ids, &sh);
    println!("  MPI-D  : {cells} cells bit-identical to the reference solver");

    // ----- Part 2: performance comparison (phantom mode, larger) -----
    println!("\ncomparing the paper's four versions (192^3 per node, 4 nodes):");
    let nodes = 4;
    let global = Dims::new(192, 384, 384); // 192^3 per node over 4 nodes
    let base = |comm| {
        let mut c = JacobiConfig::new(MachineConfig::summit(nodes), global);
        c.comm = comm;
        c.iters = 30;
        c.warmup = 5;
        c
    };
    let mpi_h = run_mpi(base(CommMode::HostStaging));
    let mpi_d = run_mpi(base(CommMode::GpuAware));
    let mut ch = base(CommMode::HostStaging);
    ch.odf = 1;
    let charm_h = run_charm(ch);
    let mut cd = base(CommMode::GpuAware);
    cd.odf = 1;
    let charm_d = run_charm(cd);

    for (name, r) in [
        ("MPI-H  ", &mpi_h),
        ("MPI-D  ", &mpi_d),
        ("Charm-H", &charm_h),
        ("Charm-D", &charm_d),
    ] {
        println!(
            "  {name}: {:>9.1} us/iter   (mean CPU utilization {:.0}%)",
            r.time_per_iter.as_micros_f64(),
            r.cpu_utilization * 100.0
        );
    }
    let speedup = mpi_h.time_per_iter.as_ns() as f64 / charm_d.time_per_iter.as_ns() as f64;
    println!("\nGPU-aware asynchronous tasks (Charm-D) vs host-staging MPI: {speedup:.2}x faster");
}
