//! Nsight-style profiling of a Jacobi3D run — the analysis the paper used
//! to find its §III-C optimizations ("After profiling the performance of
//! Jacobi3D with NVIDIA Nsight Systems, we observe that there is room for
//! another optimization...").
//!
//! Runs Charm-D on one simulated node with tracing enabled, prints the
//! per-kernel time breakdown for GPU 0, per-PE scheduler utilization, and
//! an ASCII timeline of one GPU's engines across two iterations — showing
//! pack/unpack kernels, transfers, and the update kernel overlapping.
//!
//! ```text
//! cargo run --release --example profile_run
//! ```
//!
//! Pass `--trace-out PATH` to also write the merged timeline (PE lanes,
//! GPU engine lanes, fabric link lanes) as Chrome `trace_event` JSON for
//! chrome://tracing or <https://ui.perfetto.dev>. Pass `--workers N` to
//! run the simulation itself in N-shard windowed parallel DES mode —
//! the profile is bit-identical to the single-threaded run.

use gaat::jacobi3d::{charm, CommMode, Dims, JacobiConfig};
use gaat::rt::{LbPolicy, MachineConfig};
use gaat::sim::{FaultPlan, SimDuration, SimTime, StragglerWindow, Tracer};

fn trace_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            let path = args.next().expect("--trace-out requires a path");
            return Some(path.into());
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.into());
        }
    }
    None
}

/// `--drop RATE` injects stochastic message loss (reliable transport
/// on): the retransmissions then show up both in the counters and as
/// extra spans on the fabric link lanes of the exported trace.
fn drop_rate() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--drop" {
            let p = args.next().expect("--drop requires a rate");
            return Some(p.parse().expect("parse drop rate"));
        }
        if let Some(p) = arg.strip_prefix("--drop=") {
            return Some(p.parse().expect("parse drop rate"));
        }
    }
    None
}

/// `--workers N` runs the simulation in N-shard windowed parallel DES
/// mode (default 1 = plain single-threaded engine). Results are
/// bit-identical for every worker count.
fn workers() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let n = args.next().expect("--workers requires a count");
            return n.parse().expect("parse worker count");
        }
        if let Some(n) = arg.strip_prefix("--workers=") {
            return n.parse().expect("parse worker count");
        }
    }
    1
}

/// `--lb` arms the adaptive load balancer against an injected GPU
/// straggler window and prints the closed-loop counters after the run:
/// LB rounds planned/applied/declined, chares migrated, host-side
/// plan/apply latency, and the hottest-link utilization before/after
/// the last applied plan. Migration markers land on their own lane in
/// the Chrome trace export.
fn lb() -> bool {
    std::env::args().skip(1).any(|a| a == "--lb")
}

/// `--collective {allreduce,alltoall}` profiles the gaat-coll proxy app
/// instead of Jacobi3D: per-algorithm traffic counters (bytes, chunks,
/// steps, reduced elements) plus the usual GPU-side kernel breakdown.
fn collective() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--collective" {
            return Some(args.next().expect("--collective requires an op"));
        }
        if let Some(op) = arg.strip_prefix("--collective=") {
            return Some(op.to_string());
        }
    }
    None
}

/// The `--collective` microbench: back-to-back collectives on two
/// simulated nodes with tracing on, counters per algorithm.
fn collective_profile(which: &str, workers: usize) {
    use gaat::coll::{build, payload_bytes, run, Algorithm, CollAppConfig, CollOp};

    let algorithms: Vec<(&str, CollOp, Algorithm)> = match which {
        "allreduce" => vec![
            ("ring", CollOp::AllReduce, Algorithm::Ring),
            ("tree", CollOp::AllReduce, Algorithm::Tree),
        ],
        "alltoall" => vec![("pairwise", CollOp::AllToAll, Algorithm::Ring)],
        other => {
            eprintln!("error: unknown collective {other:?} (allreduce | alltoall)");
            std::process::exit(2);
        }
    };
    for (name, op, alg) in algorithms {
        let mut machine = MachineConfig::summit(2.max(workers));
        machine.workers = workers;
        machine.trace = true;
        let count = 1 << 20;
        let mut cfg = CollAppConfig::new(machine, op, alg, count);
        cfg.rounds = 4;
        cfg.warmup = 1;
        let ranks = cfg.effective_ranks();
        let (mut sim, ids, sh) = build(cfg);
        let res = run(&mut sim, &ids, &sh);
        let bytes = payload_bytes(op, ranks, count);
        println!("== {which} ({name}) on {ranks} ranks, {count} elements ==");
        println!(
            "  {} per round  ({:.2} GB/s bus bandwidth)",
            res.time_per_round,
            res.bus_bandwidth(op, ranks, bytes) / 1e9
        );
        println!(
            "  counters: {} wire bytes, {} chunks, {} lane steps, {} elements reduced, {} rounds",
            res.stats.bytes,
            res.stats.chunks,
            res.stats.steps,
            res.stats.reduced_elems,
            res.stats.rounds
        );
        println!("  GPU 0 time by kernel / transfer:");
        for s in sim.machine.devices[0].tracer.summary() {
            println!(
                "    {:<10} {:<12} x{:<5} total {}",
                s.category, s.label, s.count, s.total
            );
        }
        println!();
    }
}

fn main() {
    let trace_out = trace_out_path();
    let drop = drop_rate();
    let workers = workers();
    let lb = lb();
    if let Some(which) = collective() {
        if drop.is_some() || lb {
            eprintln!("error: --drop/--lb are not supported with --collective");
            std::process::exit(2);
        }
        collective_profile(&which, workers);
        return;
    }
    if lb && workers > 1 {
        eprintln!("error: the periodic balancer runs single-threaded; drop --workers");
        std::process::exit(2);
    }
    if workers > 1 && drop.is_some() {
        eprintln!(
            "error: fault plans (--drop) are not yet supported with --workers > 1; \
             run the fault profile single-threaded"
        );
        std::process::exit(2);
    }
    // Loss needs inter-node traffic to act on; the fault-free profile
    // keeps the paper's single-node Nsight setup.
    // Sharding needs at least one node per worker (a node is the finest
    // shardable unit), so multi-worker profiles widen the machine.
    let mut machine = MachineConfig::summit((if drop.is_some() { 2 } else { 1 }).max(workers));
    machine.workers = workers;
    machine.trace = true;
    if let Some(p) = drop {
        machine.faults = FaultPlan {
            seed: 42,
            drop_prob: p,
            ..FaultPlan::none()
        };
        machine.ucx.reliability.enabled = true;
    }
    if lb {
        // Give the balancer something to fix: GPU 0 throttled 3x for the
        // whole run. Migrations ride the checkpoint/restore path, so
        // checkpointing and the reliable transport come on with it.
        machine.faults.stragglers.push(StragglerWindow {
            device: 0,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_ms(10_000),
            slowdown: 3.0,
        });
        machine.ucx.reliability.enabled = true;
        machine.lb.policy = LbPolicy::Adaptive;
        machine.lb.period = SimDuration::from_ms(2);
    }
    let mut cfg = JacobiConfig::new(machine, Dims::cube(768));
    cfg.comm = CommMode::HostStaging; // more engine traffic to look at
    cfg.odf = 2;
    cfg.iters = 6;
    cfg.warmup = 2;
    if lb {
        cfg.checkpoint_every = 1;
    }
    let (mut sim, ids, sh) = charm::build(cfg);
    let result = charm::run(&mut sim, &ids, &sh);
    println!(
        "ran {} iterations on {} chares: {} per iteration\n",
        sh.cfg.iters,
        ids.len(),
        result.time_per_iter
    );

    // Per-kernel breakdown on device 0 (what Nsight's CUDA trace shows).
    println!("== GPU 0: time by kernel / transfer ==");
    let dev = &sim.machine.devices[0];
    for s in dev.tracer.summary() {
        println!(
            "  {:<10} {:<12} x{:<5} total {}",
            s.category, s.label, s.count, s.total
        );
    }

    // Scheduler-side view (what Projections shows).
    println!("\n== PE scheduler utilization ==");
    let end = SimTime::ZERO + result.total;
    for pe in 0..sim.machine.pes.len() {
        let busy = sim.machine.tracer.lane_busy(pe as u32, SimTime::ZERO, end);
        println!(
            "  PE {pe}: {:5.1}% busy  ({} messages)",
            100.0 * busy.as_ns() as f64 / end.as_ns() as f64,
            sim.machine.pes[pe].stats.messages
        );
    }

    // Fault/reliability counters (all zero on a clean run; `--drop`
    // makes the retry machinery visible here and on the link lanes).
    let ucx = sim.machine.ucx.stats();
    let net = sim.machine.fabric.stats();
    println!("\n== fault / reliability counters ==");
    println!(
        "  fabric: {} drops, {} corrupts, {} failovers, {} no-routes",
        net.drops, net.corrupts, net.failovers, net.no_routes
    );
    println!(
        "  ucx:    {} retransmits, {} timeouts, {} duplicates, {} acks sent/{} received, {} peers dead",
        ucx.retransmits, ucx.timeouts, ucx.duplicates, ucx.acks_sent, ucx.acks_received, ucx.peers_dead
    );

    // Closed-loop balancer counters (the --lb profile).
    if lb {
        let s = sim.machine.lb_stats();
        println!("\n== adaptive load balancer ==");
        println!(
            "  {} rounds: {} applied, {} declined, {} chares migrated",
            s.rounds, s.applied, s.declined, s.migrations
        );
        println!(
            "  host latency: plan {:.1} us/round, apply {:.1} us/round",
            s.plan_host_ns as f64 / 1e3 / s.rounds.max(1) as f64,
            s.apply_host_ns as f64 / 1e3 / s.applied.max(1) as f64,
        );
        println!(
            "  hottest link around last applied plan: {:.1}% -> {:.1}% utilized",
            100.0 * s.last_util_before,
            100.0 * s.last_util_after
        );
    }

    // Timeline of GPU 0's engines across iterations 3-4 of the run.
    let from = result.warm_at;
    let to = from + (result.time_per_iter * 2);
    println!("\n== GPU 0 engine timeline (two iterations) ==");
    println!("   u = update, p = pack(+fused), d/h = DMA, . = idle\n");
    print!(
        "{}",
        dev.tracer
            .ascii_timeline(&[(0, "compute"), (1, "d2h"), (2, "h2d")], from, to, 100)
    );
    println!(
        "\nNote how transfers and (un)packing overlap with the update kernel —\n\
         the concurrency the paper's optimized implementation creates by using\n\
         separate high-priority streams per direction (§III-C)."
    );

    if let Some(path) = trace_out {
        // Merge every tracer into one timeline with disjoint lane
        // ranges: PEs first, then each device's engines, then fabric
        // links.
        let mut merged = Tracer::enabled();
        merged.extend_from(&sim.machine.tracer, 0);
        // Lane pes.len() is the machine's LB-migration marker lane;
        // device lanes start above it so the markers stay visible.
        let mut lane = sim.machine.pes.len() as u32 + 1;
        for dev in &sim.machine.devices {
            merged.extend_from(&dev.tracer, lane);
            lane += 8; // engine lanes per device
        }
        merged.extend_from(&sim.machine.fabric.tracer, lane);
        merged.export_chrome(&path).expect("write chrome trace");
        println!(
            "\nwrote {} spans of Chrome trace JSON to {}",
            merged.spans().len(),
            path.display()
        );
    }
}
