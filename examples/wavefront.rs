//! The wavefront-sweep proxy app: a different communication pattern on
//! the same GPU-aware asynchronous runtime. Shows both granularity
//! regimes — overdecomposition cuts the latency of a single sweep front
//! crossing the machine, while steady-state throughput prefers coarser
//! blocks (the same trade-off the paper quantifies for Jacobi3D).
//!
//! ```text
//! cargo run --release --example wavefront [nodes]
//! ```

use gaat::jacobi3d::Dims;
use gaat::rt::MachineConfig;
use gaat::sweep3d::{run_sweep, SweepConfig};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("nodes must be a number"))
        .unwrap_or(4);
    let global = Dims::cube(768);
    println!(
        "wavefront sweep of a 768x768x768 grid over {nodes} nodes ({} GPUs)\n",
        nodes * 6
    );

    println!("single-sweep latency (pipeline fill):");
    for odf in [1usize, 2, 4, 8] {
        let mut cfg = SweepConfig::new(MachineConfig::summit(nodes), global);
        cfg.odf = odf;
        cfg.sweeps = 1;
        cfg.warmup = 0;
        let r = run_sweep(cfg);
        println!("  ODF {odf}: {:>10}", r.total);
    }

    println!("\nsteady-state time per sweep (8 back-to-back sweeps):");
    for odf in [1usize, 2, 4, 8] {
        let mut cfg = SweepConfig::new(MachineConfig::summit(nodes), global);
        cfg.odf = odf;
        cfg.sweeps = 8;
        cfg.warmup = 2;
        let r = run_sweep(cfg);
        println!(
            "  ODF {odf}: {:>10}   (cpu {:.2})",
            r.time_per_sweep, r.cpu_utilization
        );
    }
    println!(
        "\nFiner blocks shorten the wavefront's critical path but add per-chare\n\
         overheads once the pipeline is saturated — pick the ODF for the regime."
    );
}
