//! Explore the paper's fine-grained-overhead mitigations (§III-D):
//! kernel fusion strategies A/B/C and graph execution, across
//! overdecomposition factors, on a strong-scaled grid where kernel launch
//! overheads dominate.
//!
//! ```text
//! cargo run --release --example fusion_explorer [nodes]
//! ```

use gaat::jacobi3d::{run_charm, CommMode, Dims, Fusion, JacobiConfig};
use gaat::rt::MachineConfig;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("nodes must be a number"))
        .unwrap_or(16);
    println!(
        "Charm-D Jacobi3D, 768^3 over {nodes} nodes ({} GPUs) — per-iteration time\n",
        nodes * 6
    );
    println!(
        "{:<6} {:<10} {:>14} {:>14} {:>10}",
        "ODF", "fusion", "streams", "graphs", "speedup"
    );
    for odf in [1usize, 2, 4, 8] {
        for fusion in [Fusion::None, Fusion::A, Fusion::B, Fusion::C] {
            let mut cfg = JacobiConfig::new(MachineConfig::summit(nodes), Dims::cube(768));
            cfg.comm = CommMode::GpuAware;
            cfg.odf = odf;
            cfg.fusion = fusion;
            cfg.iters = 25;
            cfg.warmup = 5;
            let plain = run_charm(cfg.clone());
            cfg.graphs = true;
            let graphed = run_charm(cfg);
            println!(
                "{:<6} {:<10} {:>11.1} us {:>11.1} us {:>9.2}x",
                odf,
                format!("{fusion:?}"),
                plain.time_per_iter.as_micros_f64(),
                graphed.time_per_iter.as_micros_f64(),
                plain.time_per_iter.as_ns() as f64 / graphed.time_per_iter.as_ns() as f64
            );
        }
    }
    println!(
        "\nKernel launches per GPU per iteration shrink from ~13 x ODF (no fusion)\n\
         to ODF (fusion C) — or to a single graph launch; the speedup column is\n\
         the paper's Fig. 9 metric."
    );
}
