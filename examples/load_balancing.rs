//! Runtime adaptivity — the reason the paper tolerates overdecomposition
//! overheads even when ODF > 1 is slower: migratable chares enable load
//! balancing. This example builds an imbalanced ensemble of GPU-offloading
//! chares (a hotspot pattern), runs one phase, rebalances with the greedy
//! strategy using the runtime's measured per-chare loads, and runs the
//! next phase on the new mapping.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use gaat::gpu::{KernelSpec, Op, StreamId};
use gaat::rt::{lb, Callback, Chare, ChareId, Ctx, EntryId, Envelope, MachineConfig, Simulation};
use gaat::sim::{SimDuration, SimTime};

const E_GO: EntryId = EntryId(0);
const E_DONE: EntryId = EntryId(1);

/// A chare that runs `reps` cycles of (GPU kernel, host post-processing),
/// with per-chare work weight — the hotspot.
struct Worker {
    stream: Option<StreamId>,
    weight: u64,
    reps_left: u32,
    finished_at: Option<SimTime>,
}

impl Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        // Streams are per-device; after migration we need one on the new
        // device, so create lazily per phase.
        let stream = *self.stream.get_or_insert_with(|| {
            let dev = ctx.device();
            ctx.machine.devices[dev.0].create_stream(0)
        });
        ctx.launch(
            stream,
            Op::kernel(KernelSpec::phantom(
                "work",
                SimDuration::from_us(20 * self.weight),
            )),
        );
        ctx.hapi(stream, Callback::to(ctx.me(), E_DONE));
    }
}

impl Chare for Worker {
    fn receive(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        match env.entry {
            E_GO => {
                self.finished_at = None;
                self.step(ctx);
            }
            E_DONE => {
                // Host-side post-processing proportional to the weight.
                ctx.compute(SimDuration::from_us(15 * self.weight));
                if self.reps_left == 0 {
                    self.finished_at = Some(ctx.start_time());
                } else {
                    self.reps_left -= 1;
                    self.step(ctx);
                }
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }
}

fn run_phase(sim: &mut Simulation, ids: &[ChareId], reps: u32) -> SimDuration {
    let start = sim.now();
    {
        let Simulation { sim, machine, .. } = sim;
        for &id in ids {
            let w = machine
                .chare_for_setup(id)
                .downcast_mut::<Worker>()
                .expect("worker");
            w.reps_left = reps;
            w.stream = None; // re-created on the (possibly new) device
            machine.inject(sim, id, Envelope::empty(E_GO));
        }
    }
    sim.run();
    let end = ids
        .iter()
        .map(|&id| {
            sim.machine
                .chare_as::<Worker>(id)
                .finished_at
                .expect("phase finished")
        })
        .fold(SimTime::ZERO, SimTime::max);
    end.since(start)
}

fn main() {
    let pes = 8;
    let odf = 4;
    let mut sim = Simulation::new(MachineConfig::validation(1, pes));

    // Hotspot: the chares initially mapped to PE 0 and PE 1 are 6x
    // heavier (think: a refined region of an AMR mesh).
    let mut ids = Vec::new();
    for i in 0..pes * odf {
        let pe = i / odf;
        let weight = if pe < 2 { 6 } else { 1 };
        ids.push(sim.machine.create_chare(
            pe,
            Box::new(Worker {
                stream: None,
                weight,
                reps_left: 0,
                finished_at: None,
            }),
        ));
    }

    let before = run_phase(&mut sim, &ids, 40);
    println!("phase 1 (imbalanced, hotspot on PEs 0-1): {before}");

    // The runtime measured every chare's charged CPU time during phase 1;
    // greedy rebalancing uses exactly that.
    let report = lb::greedy_rebalance(&mut sim.machine, &ids);
    println!(
        "greedy rebalance: {} migrations, predicted max PE load {:.1} ms -> {:.1} ms",
        report.migrations,
        report.max_before_ns as f64 / 1e6,
        report.max_after_ns as f64 / 1e6,
    );

    let after = run_phase(&mut sim, &ids, 40);
    println!("phase 2 (rebalanced):                      {after}");
    println!(
        "speedup from load balancing: {:.2}x",
        before.as_ns() as f64 / after.as_ns() as f64
    );
    assert!(after < before, "rebalancing must help this workload");
}
