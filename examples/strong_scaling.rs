//! Strong-scaling study (the paper's Fig. 7c scenario, scaled down):
//! a fixed global grid distributed over more and more simulated nodes,
//! comparing all four versions and sweeping the overdecomposition factor
//! to find the crossover the paper reports.
//!
//! ```text
//! cargo run --release --example strong_scaling [max_nodes] [--topology flat|fattree] [--workers N]
//! ```
//!
//! `--topology fattree` swaps the flat per-NIC interconnect for the
//! explicit fat-tree model: messages then contend for NIC ports and
//! leaf/spine trunks under max-min fair sharing, which steepens the
//! scaling curve exactly where the paper's Summit runs do.

use gaat::jacobi3d::{run_charm_in, run_mpi_in, CommMode, Dims, JacobiConfig};
use gaat::rt::MachineConfig;
use gaat::sweep::run_batch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topology = match args.iter().position(|a| a == "--topology") {
        Some(i) => args
            .get(i + 1)
            .map(|s| s.as_str())
            .unwrap_or("flat")
            .to_string(),
        None => "flat".to_string(),
    };
    assert!(
        topology == "flat" || topology == "fattree",
        "--topology must be `flat` or `fattree`"
    );
    let workers: usize = match args.iter().position(|a| a == "--workers") {
        Some(i) => args
            .get(i + 1)
            .expect("--workers needs a value")
            .parse()
            .expect("--workers must be a number"),
        None => 1,
    };
    if workers > 1 && topology == "fattree" {
        eprintln!(
            "error: --workers {workers} is not yet supported with --topology fattree \
             (flow completion times depend on later admissions, so no \
             admission-time lookahead exists); run with --workers 1"
        );
        std::process::exit(2);
    }
    let max_nodes: usize = args
        .iter()
        .find(|a| !a.starts_with("--") && a.chars().all(|c| c.is_ascii_digit()))
        .map(|s| s.parse().expect("max_nodes must be a number"))
        .unwrap_or(32);
    let machine = |nodes| {
        let mut m = if topology == "fattree" {
            MachineConfig::summit_fattree(nodes)
        } else {
            MachineConfig::summit(nodes)
        };
        m.workers = workers;
        m
    };
    let global = Dims::cube(768);
    println!(
        "strong scaling a {0}x{0}x{0} grid, 6 GPUs per node, {1} interconnect, {2} worker(s)\n",
        768, topology, workers
    );
    println!(
        "{:<7} {:>12} {:>12} {:>24} {:>24}",
        "nodes", "MPI-H", "MPI-D", "Charm-H (best odf)", "Charm-D (best odf)"
    );

    // One job per (nodes, variant, odf) point, drained by the sweep
    // engine's slot pool: each pool worker recycles one engine across
    // every point it claims (bit-invisible — `Sim::reset` is pinned
    // identical to a fresh world), instead of the old hand-rolled serial
    // loop rebuilding a world per point.
    struct Job {
        nodes: usize,
        charm: bool,
        comm: CommMode,
        odf: usize,
    }
    let mut jobs = Vec::new();
    let mut nodes = 2;
    while nodes <= max_nodes {
        for comm in [CommMode::HostStaging, CommMode::GpuAware] {
            jobs.push(Job {
                nodes,
                charm: false,
                comm,
                odf: 1,
            });
            for odf in [1usize, 2, 4, 8] {
                jobs.push(Job {
                    nodes,
                    charm: true,
                    comm,
                    odf,
                });
            }
        }
        nodes *= 2;
    }

    let (times, slots) = run_batch(&jobs, 0, |slot, j: &Job| {
        let mut c = JacobiConfig::new(machine(j.nodes), global);
        c.comm = j.comm;
        c.iters = 25;
        c.warmup = 5;
        let sim0 = slot.prepare(c.machine.clone());
        let (sim, r) = if j.charm {
            c.odf = j.odf;
            run_charm_in(sim0, c)
        } else {
            run_mpi_in(sim0, c)
        };
        slot.retire(sim);
        r.time_per_iter.as_micros_f64()
    });

    let mut nodes = 2;
    while nodes <= max_nodes {
        let pick = |charm: bool, comm: CommMode| -> (usize, f64) {
            jobs.iter()
                .zip(&times)
                .filter(|(j, _)| j.nodes == nodes && j.charm == charm && j.comm == comm)
                .map(|(j, &t)| (j.odf, t))
                .fold((0usize, f64::INFINITY), |best, cand| {
                    if cand.1 < best.1 {
                        cand
                    } else {
                        best
                    }
                })
        };
        let (_, mpi_h) = pick(false, CommMode::HostStaging);
        let (_, mpi_d) = pick(false, CommMode::GpuAware);
        let (ho, ht) = pick(true, CommMode::HostStaging);
        let (go, gt) = pick(true, CommMode::GpuAware);

        println!(
            "{:<7} {:>9.1} us {:>9.1} us {:>15.1} us (odf={}) {:>15.1} us (odf={})",
            nodes, mpi_h, mpi_d, ht, ho, gt, go,
        );
        nodes *= 2;
    }
    println!(
        "\n({} points on the sweep engine's slot pool: {} worlds built, {} recycled)",
        jobs.len(),
        slots.prepared,
        slots.reused
    );
    println!(
        "\nAs in the paper: the best ODF shrinks as blocks get finer, and the \
         GPU-aware version sustains higher ODFs longer (more room for overlap)."
    );
}
