//! Strong-scaling study (the paper's Fig. 7c scenario, scaled down):
//! a fixed global grid distributed over more and more simulated nodes,
//! comparing all four versions and sweeping the overdecomposition factor
//! to find the crossover the paper reports.
//!
//! ```text
//! cargo run --release --example strong_scaling [max_nodes]
//! ```

use gaat::jacobi3d::{run_charm, run_mpi, CommMode, Dims, JacobiConfig};
use gaat::rt::MachineConfig;

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_nodes must be a number"))
        .unwrap_or(32);
    let global = Dims::cube(768);
    println!("strong scaling a {0}x{0}x{0} grid, 6 GPUs per node\n", 768);
    println!(
        "{:<7} {:>12} {:>12} {:>24} {:>24}",
        "nodes", "MPI-H", "MPI-D", "Charm-H (best odf)", "Charm-D (best odf)"
    );

    let mut nodes = 2;
    while nodes <= max_nodes {
        let base = |comm| {
            let mut c = JacobiConfig::new(MachineConfig::summit(nodes), global);
            c.comm = comm;
            c.iters = 25;
            c.warmup = 5;
            c
        };
        let mpi_h = run_mpi(base(CommMode::HostStaging)).time_per_iter;
        let mpi_d = run_mpi(base(CommMode::GpuAware)).time_per_iter;

        let best = |comm| {
            let mut best = (0usize, f64::INFINITY);
            for odf in [1usize, 2, 4, 8] {
                let mut c = base(comm);
                c.odf = odf;
                let t = run_charm(c).time_per_iter.as_micros_f64();
                if t < best.1 {
                    best = (odf, t);
                }
            }
            best
        };
        let (ho, ht) = best(CommMode::HostStaging);
        let (go, gt) = best(CommMode::GpuAware);

        println!(
            "{:<7} {:>9.1} us {:>9.1} us {:>15.1} us (odf={}) {:>15.1} us (odf={})",
            nodes,
            mpi_h.as_micros_f64(),
            mpi_d.as_micros_f64(),
            ht,
            ho,
            gt,
            go,
        );
        nodes *= 2;
    }
    println!(
        "\nAs in the paper: the best ODF shrinks as blocks get finer, and the \
         GPU-aware version sustains higher ODFs longer (more room for overlap)."
    );
}
